"""Tests for the logic-synthesis front end (repro.synthesis).

Covers the four layers -- MIG ingestion (builder, parser, truth
tables), the optimization passes (function preservation on randomized
graphs, per-pass behaviour, fixpoint), technology mapping onto the
physical library, and verification -- plus the acceptance criteria of
the benchmark suite: optimized mappings are equivalent, never deeper
and never larger than naive ones, with strict reductions confirmed
physically on the circuit engine in both execution modes.
"""

import itertools
import random

import pytest

from repro.circuits.engine import CircuitEngine
from repro.circuits.library import default_library
from repro.errors import SynthesisError
from repro.synthesis import (
    CONST0,
    CONST1,
    MIG,
    AssociativityRebalance,
    ConstantPropagation,
    DeadNodeElimination,
    InverterPush,
    StructuralHashing,
    from_truth_table,
    input_vectors,
    mapping_report,
    optimize,
    parse_expression,
    parse_spec,
    physical_cell_count,
    physical_depth,
    suite,
    synthesize,
    to_netlist,
    truth_table_of,
    verify_equivalence,
    verify_physical,
)


def exhaustive_batch(input_names):
    return [
        dict(zip(input_names, bits))
        for bits in itertools.product((0, 1), repeat=len(input_names))
    ]


def random_mig(seed, n_inputs=4, n_gates=12, n_outputs=2):
    """A seeded random MIG mixing every operator and edge polarity."""
    rng = random.Random(seed)
    mig = MIG(f"rand{seed}")
    literals = [mig.add_input(f"x{i}") for i in range(n_inputs)]
    literals += [CONST0, CONST1]

    def pick():
        return rng.choice(literals) ^ rng.randint(0, 1)

    for _ in range(n_gates):
        operator = rng.choice(("maj", "xor", "and", "or"))
        if operator == "maj":
            literals.append(mig.maj(pick(), pick(), pick()))
        elif operator == "xor":
            literals.append(mig.xor(pick(), pick()))
        elif operator == "and":
            literals.append(mig.and_(pick(), pick()))
        else:
            literals.append(mig.or_(pick(), pick()))
    for index in range(n_outputs):
        mig.set_output(f"y{index}", literals[-(index + 1)] ^ (index & 1))
    return mig


# ----------------------------------------------------------------------
# MIG construction and evaluation
# ----------------------------------------------------------------------
class TestMig:
    def test_full_adder_semantics(self):
        mig = MIG("fa")
        a, b, c = (mig.add_input(x) for x in "abc")
        mig.set_output("carry", mig.maj(a, b, c))
        mig.set_output("sum", mig.xor(mig.xor(a, b), c))
        for bits in itertools.product((0, 1), repeat=3):
            assignment = dict(zip("abc", bits))
            outputs = mig.evaluate(assignment)
            assert outputs["carry"] == int(sum(bits) >= 2)
            assert outputs["sum"] == sum(bits) % 2

    def test_derived_operators(self):
        mig = MIG()
        a, b = mig.add_input("a"), mig.add_input("b")
        mig.set_output("and", mig.and_(a, b))
        mig.set_output("or", mig.or_(a, b))
        mig.set_output("xnor", mig.xnor(a, b))
        mig.set_output("mux", mig.mux(a, b, mig.inv(b)))
        for bits in itertools.product((0, 1), repeat=2):
            va, vb = bits
            outputs = mig.evaluate({"a": va, "b": vb})
            assert outputs["and"] == (va & vb)
            assert outputs["or"] == (va | vb)
            assert outputs["xnor"] == 1 - (va ^ vb)
            assert outputs["mux"] == ((1 - vb) if va else vb)

    def test_evaluate_batch_matches_scalar(self):
        mig = random_mig(3)
        batch = exhaustive_batch(mig.inputs)
        vectorised = mig.evaluate_batch(batch)
        for index, assignment in enumerate(batch):
            scalar = mig.evaluate(assignment)
            for name, bits in vectorised.items():
                assert bits[index] == scalar[name]

    def test_depth_and_levels(self):
        mig = MIG()
        a, b, c = (mig.add_input(x) for x in "abc")
        first = mig.xor(a, b)
        second = mig.xor(first, c)
        mig.set_output("p", second)
        assert mig.level(a) == 0
        assert mig.level(first) == 1
        assert mig.level(mig.inv(second)) == 2  # inverters are free
        assert mig.depth() == 2

    def test_reachable_and_fanout(self):
        mig = MIG()
        a, b = mig.add_input("a"), mig.add_input("b")
        kept = mig.and_(a, b)
        mig.or_(a, b)  # dead
        mig.set_output("y", kept)
        reachable = mig.reachable()
        assert node_ids(mig, kept) <= reachable
        assert len(reachable) == 4  # const, a, b, kept
        fanout = mig.fanout_counts()
        assert fanout[kept >> 1] == 1

    def test_errors(self):
        mig = MIG()
        a = mig.add_input("a")
        with pytest.raises(SynthesisError, match="already exists"):
            mig.add_input("a")
        with pytest.raises(SynthesisError, match="does not exist"):
            mig.maj(a, a, 999)
        with pytest.raises(SynthesisError, match="must be 0 or 1"):
            mig.const(2)
        with pytest.raises(SynthesisError, match="collides"):
            mig.set_output("a", a)
        mig.set_output("y", a)
        with pytest.raises(SynthesisError, match="no value supplied"):
            mig.evaluate({})
        with pytest.raises(SynthesisError, match="0 or 1"):
            mig.evaluate({"a": 2})
        with pytest.raises(SynthesisError, match="no assignments"):
            mig.evaluate_batch([])


def node_ids(mig, *literals):
    return {literal >> 1 for literal in literals}


# ----------------------------------------------------------------------
# Expression parser
# ----------------------------------------------------------------------
class TestParser:
    @pytest.mark.parametrize(
        "text,function",
        [
            ("a & b", lambda a, b, c: a & b),
            ("a | b ^ c", lambda a, b, c: a | (b ^ c)),
            ("a ^ b & c", lambda a, b, c: a ^ (b & c)),
            ("~(a | b) & c", lambda a, b, c: (1 - (a | b)) & c),
            ("maj(a, b, c)", lambda a, b, c: int(a + b + c >= 2)),
            ("maj(a, ~b, 1) ^ ~c", lambda a, b, c:
                int(a + (1 - b) + 1 >= 2) ^ (1 - c)),
            ("(a | b) & (a | c) & (b | c)", lambda a, b, c:
                (a | b) & (a | c) & (b | c)),
            ("~~a ^ 0", lambda a, b, c: a),
        ],
    )
    def test_expression_semantics(self, text, function):
        mig = parse_expression(text)
        for bits in itertools.product((0, 1), repeat=3):
            assignment = dict(zip("abc", bits))
            present = {
                name: value for name, value in assignment.items()
                if name in mig.inputs
            }
            assert mig.evaluate(present)["out"] == function(*bits), text

    def test_spec_shares_inputs(self):
        mig = parse_spec({"s": "a ^ b", "c": "a & b"})
        assert mig.inputs == ["a", "b"]
        outputs = mig.evaluate({"a": 1, "b": 1})
        assert outputs == {"s": 0, "c": 1}

    @pytest.mark.parametrize(
        "text",
        ["", "a &", "a $ b", "maj(a, b)", "(a | b", "a b", "~", "   "],
    )
    def test_malformed_expressions_raise(self, text):
        with pytest.raises(SynthesisError):
            parse_expression(text)

    def test_trailing_whitespace_tolerated(self):
        mig = parse_expression("a ^ b ")
        assert mig.evaluate({"a": 1, "b": 0})["out"] == 1

    def test_expression_referencing_prior_output_rejected(self):
        """Outputs are not signals: a later expression naming one must
        fail loudly instead of minting a shadow input."""
        with pytest.raises(SynthesisError, match="collides"):
            parse_spec({"f": "a & b", "g": "f | a"})


# ----------------------------------------------------------------------
# Truth-table ingestion
# ----------------------------------------------------------------------
class TestTruthTable:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.choice((2, 3, 4))
        column = [rng.randint(0, 1) for _ in range(2 ** n)]
        mig = from_truth_table(column)
        assert truth_table_of(mig.evaluate, mig.inputs, "f") == column

    def test_string_column_and_names(self):
        mig = from_truth_table("0111", inputs=("x", "y"), output="or2")
        assert mig.inputs == ["x", "y"]
        assert mig.evaluate({"x": 1, "y": 0}) == {"or2": 1}

    def test_constant_functions(self):
        always = from_truth_table([1, 1, 1, 1])
        assert always.n_gates == 0
        assert always.evaluate({"x0": 0, "x1": 1}) == {"f": 1}

    def test_extends_existing_mig(self):
        mig = from_truth_table("0110", inputs=("a", "b"), output="xor")
        from_truth_table("1000", inputs=("a", "b"), output="nor", mig=mig)
        assert mig.inputs == ["a", "b"]  # shared, not duplicated
        assert mig.evaluate({"a": 0, "b": 0}) == {"xor": 0, "nor": 1}

    def test_errors(self):
        with pytest.raises(SynthesisError, match="power-of-two"):
            from_truth_table([0, 1, 1])
        with pytest.raises(SynthesisError, match="0/1"):
            from_truth_table([0, 2])
        with pytest.raises(SynthesisError, match="needs 2 inputs"):
            from_truth_table([0, 1, 1, 0], inputs=("a",))


# ----------------------------------------------------------------------
# Optimization passes
# ----------------------------------------------------------------------
ALL_PASSES = [
    ConstantPropagation,
    InverterPush,
    StructuralHashing,
    AssociativityRebalance,
    DeadNodeElimination,
]


class TestPasses:
    @pytest.mark.parametrize("pass_class", ALL_PASSES,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("seed", range(8))
    def test_each_pass_preserves_function(self, pass_class, seed):
        mig = random_mig(seed)
        batch = exhaustive_batch(mig.inputs)
        want = mig.evaluate_batch(batch)
        rewritten, _ = pass_class().run(mig)
        assert rewritten.evaluate_batch(batch) == want

    @pytest.mark.parametrize("seed", range(8))
    def test_pipeline_preserves_function(self, seed):
        mig = random_mig(seed, n_gates=20)
        batch = exhaustive_batch(mig.inputs)
        want = mig.evaluate_batch(batch)
        optimized, stats = optimize(mig)
        assert optimized.evaluate_batch(batch) == want
        assert optimized.n_gates <= mig.n_gates
        assert optimized.depth() <= mig.depth()
        assert stats  # at least one round recorded

    def test_constant_propagation_folds(self):
        mig = parse_expression("(a & 0) | (a & ~a) | (b & 1 & b)")
        optimized, _ = optimize(mig)
        # The whole expression collapses to b.
        assert optimized.n_gates == 0
        for va, vb in itertools.product((0, 1), repeat=2):
            assert optimized.evaluate({"a": va, "b": vb})["out"] == vb

    def test_structural_hashing_shares(self):
        mig = parse_expression("(a & b) ^ (a & b)")
        hashed, _ = StructuralHashing().run(mig)
        folded, _ = ConstantPropagation().run(hashed)
        cleaned, _ = DeadNodeElimination().run(folded)
        assert cleaned.n_gates == 0  # x ^ x = 0 once the ANDs merge

    def test_structural_hashing_is_commutative(self):
        mig = MIG()
        a, b, c = (mig.add_input(x) for x in "abc")
        mig.set_output("p", mig.maj(a, b, c))
        mig.set_output("q", mig.maj(c, a, b))
        hashed, _ = StructuralHashing().run(mig)
        cleaned, _ = DeadNodeElimination().run(hashed)
        assert cleaned.n_gates == 1

    def test_inverter_push_reduces_inv_cells(self):
        mig = parse_expression("~a & ~b & ~c")
        naive_cells = to_netlist(mig).cell_counts()
        pushed, _ = InverterPush().run(mig)
        pushed_cells = to_netlist(pushed).cell_counts()
        assert pushed_cells.get("INV", 0) < naive_cells.get("INV", 0)

    def test_rebalance_collapses_chain_depth(self):
        mig = MIG()
        literals = [mig.add_input(f"x{i}") for i in range(8)]
        accumulator = literals[0]
        for literal in literals[1:]:
            accumulator = mig.xor(accumulator, literal)
        mig.set_output("p", accumulator)
        rebalanced, rewrites = AssociativityRebalance().run(mig)
        assert rewrites == 1
        assert rebalanced.depth() == 3  # log2(8)
        batch = exhaustive_batch(mig.inputs)
        assert rebalanced.evaluate_batch(batch) == mig.evaluate_batch(batch)

    def test_rebalance_respects_fanout(self):
        """A chain member consumed twice must not be duplicated away."""
        mig = MIG()
        a, b, c = (mig.add_input(x) for x in "abc")
        inner = mig.and_(a, b)
        outer = mig.and_(inner, c)
        mig.set_output("y", outer)
        mig.set_output("inner", inner)  # second consumer
        rebalanced, rewrites = AssociativityRebalance().run(mig)
        assert rewrites == 0  # two-leaf heads stay as written
        batch = exhaustive_batch(mig.inputs)
        assert rebalanced.evaluate_batch(batch) == mig.evaluate_batch(batch)

    def test_dead_node_elimination(self):
        mig = MIG()
        a, b = mig.add_input("a"), mig.add_input("b")
        mig.set_output("y", mig.and_(a, b))
        mig.or_(a, b)  # dead
        cleaned, dropped = DeadNodeElimination().run(mig)
        assert dropped == 1
        assert cleaned.n_gates == 1
        assert cleaned.inputs == ["a", "b"]  # interface preserved

    def test_optimize_reaches_fixpoint(self):
        mig = suite()[0].build()  # parity8 chain
        optimized, _ = optimize(mig)
        again, stats = optimize(optimized)
        assert again.n_gates == optimized.n_gates
        assert again.depth() == optimized.depth()
        # A single round suffices to detect the fixpoint.
        assert max(record.round for record in stats) == 1
        assert not any(record.changed for record in stats)

    def test_pass_stats_describe(self):
        _, stats = optimize(suite()[0].build())
        record = stats[0]
        assert record.name in [cls().name for cls in ALL_PASSES]
        assert "gates" in record.describe()
        with pytest.raises(SynthesisError, match="max_rounds"):
            optimize(MIG(), max_rounds=0)


# ----------------------------------------------------------------------
# Technology mapping
# ----------------------------------------------------------------------
class TestMapping:
    @pytest.mark.parametrize("seed", range(6))
    def test_mapping_is_equivalent(self, seed):
        mig = random_mig(seed)
        netlist = to_netlist(mig)
        batch = exhaustive_batch(mig.inputs)
        assert netlist.evaluate_batch(batch) == mig.evaluate_batch(batch)

    def test_output_names_and_polarity_cells(self):
        mig = parse_spec({"plain": "a & b", "inverted": "~(a & b)"})
        netlist = to_netlist(mig)
        assert netlist.outputs == ["plain", "inverted"]
        assert netlist.node("plain").kind == "BUF"
        assert netlist.node("inverted").kind == "INV"

    def test_shared_inverter_cell(self):
        """Every complemented use of one node shares one INV cell."""
        mig = MIG()
        a, b, c = (mig.add_input(x) for x in "abc")
        shared = mig.xor(a, b)
        inverted = mig.inv(shared)
        mig.set_output("p", mig.and_(inverted, c))
        mig.set_output("q", mig.or_(inverted, c))
        netlist = to_netlist(mig)
        assert netlist.cell_counts()["INV"] == 1

    def test_physical_depth_ignores_free_cells(self):
        mig = parse_expression("~(~a & ~b)")
        netlist = to_netlist(mig)
        assert physical_depth(netlist) == 1
        assert netlist.depth() > 1  # INV/output cells schedule as levels
        assert physical_cell_count(netlist) == 1

    def test_constant_outputs_and_inputs(self):
        mig = MIG()
        a = mig.add_input("a")
        mig.set_output("zero", CONST0)
        mig.set_output("one", CONST1)
        mig.set_output("nota", mig.inv(a))
        netlist = to_netlist(mig)
        outputs = netlist.evaluate({"a": 1})
        assert outputs == {"zero": 0, "one": 1, "nota": 0}

    def test_mapping_report_with_library(self):
        library = default_library(1)
        mig = parse_expression("maj(a, b, c) ^ a")
        report = mapping_report(to_netlist(mig), library=library)
        assert report.n_physical == 2
        assert report.cost is not None
        assert report.cost.area > 0
        assert "physical cells" in report.describe()

    def test_unmapped_specs_rejected(self):
        with pytest.raises(SynthesisError, match="without outputs"):
            to_netlist(MIG())

    def test_name_collisions_freshened(self):
        """Internal cell names never collide with hostile input names."""
        mig = MIG()
        a = mig.add_input("n1")  # the mapper's candidate for node 1
        b = mig.add_input("c0")  # the mapper's constant-0 name
        mig.set_output("y", mig.and_(mig.and_(a, b), CONST1))
        netlist = to_netlist(mig)
        assert set(netlist.inputs) == {"n1", "c0"}  # names kept verbatim
        batch = exhaustive_batch(["n1", "c0"])
        assert netlist.evaluate_batch(batch) == mig.evaluate_batch(batch)

    def test_late_input_shadowing_a_generated_cell_name(self):
        """An input declared *after* gate nodes keeps its name even when
        a generated internal name ('n<id>') would otherwise take it."""
        mig = parse_spec({"y": "a & b & c", "z": "n3 ^ a"})
        netlist = to_netlist(mig)
        assert "n3" in netlist.inputs
        batch = exhaustive_batch(mig.inputs)
        assert netlist.evaluate_batch(batch) == mig.evaluate_batch(batch)


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
class TestVerification:
    def test_exhaustive_below_threshold(self):
        batch, exhaustive = input_vectors(["a", "b", "c"])
        assert exhaustive and len(batch) == 8

    def test_sampled_above_threshold(self):
        names = [f"x{i}" for i in range(20)]
        batch, exhaustive = input_vectors(names, n_samples=64, seed=1)
        assert not exhaustive and len(batch) == 64
        repeat, _ = input_vectors(names, n_samples=64, seed=1)
        assert batch == repeat  # seeded determinism

    def test_catches_wrong_netlist(self):
        mig = parse_expression("a & b")
        wrong = to_netlist(parse_expression("a | b"))
        report = verify_equivalence(wrong, mig)
        assert not report.equivalent
        assert report.counterexample is not None
        assert "NOT equivalent" in report.describe()
        # The counterexample really distinguishes the two.
        assignment = report.counterexample
        assert (
            wrong.evaluate(assignment)["out"]
            != mig.evaluate(assignment)["out"]
        )

    def test_output_set_mismatch_raises(self):
        mig = parse_spec({"y": "a & b"})
        other = to_netlist(parse_spec({"z": "a & b"}))
        with pytest.raises(SynthesisError, match="output sets differ"):
            verify_equivalence(other, mig)

    def test_callable_reference(self):
        mig = parse_expression("maj(a, b, c)")
        report = verify_equivalence(
            to_netlist(mig),
            lambda assignment: {
                "out": int(sum(assignment.values()) >= 2)
            },
        )
        assert report.equivalent and report.exhaustive

    def test_sampled_verification_of_wide_spec(self):
        mig = MIG("wide")
        literals = [mig.add_input(f"x{i}") for i in range(14)]
        accumulator = literals[0]
        for literal in literals[1:]:
            accumulator = mig.xor(accumulator, literal)
        mig.set_output("parity", accumulator)
        report = verify_equivalence(
            to_netlist(mig), mig, n_samples=64, seed=3
        )
        assert report.equivalent and not report.exhaustive
        assert report.n_vectors == 64

    def test_unsound_pass_is_caught_by_synthesize(self):
        class BreakEverything(ConstantPropagation):
            name = "break-everything"

            def rewrite(self, new, kind, fanin):
                return CONST0  # constant-0 everything

        mig = parse_expression("a & b")
        with pytest.raises(SynthesisError, match="not equivalent"):
            synthesize(mig, passes=[BreakEverything()])


# ----------------------------------------------------------------------
# The benchmark suite: acceptance criteria
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def suite_results():
    return {
        circuit.name: (
            circuit,
            synthesize(circuit.build(), reference=circuit.reference),
        )
        for circuit in suite()
    }


class TestSuiteAcceptance:
    def test_every_circuit_verified_against_reference(self, suite_results):
        for name, (circuit, result) in suite_results.items():
            assert result.verified, name
            for report in result.equivalence.values():
                assert report.exhaustive, name  # all suite specs <= 12 in

    def test_never_deeper_never_larger(self, suite_results):
        for name, (_, result) in suite_results.items():
            assert result.optimized.depth <= result.naive.depth, name
            assert (
                result.optimized.physical_depth
                <= result.naive.physical_depth
            ), name
            assert result.optimized.n_physical <= result.naive.n_physical, name
            assert result.optimized.n_cells <= result.naive.n_cells, name

    def test_strict_reductions_exist(self, suite_results):
        depth_wins = [
            name for name, (_, result) in suite_results.items()
            if result.optimized.physical_depth < result.naive.physical_depth
        ]
        cell_wins = [
            name for name, (_, result) in suite_results.items()
            if result.optimized.n_physical < result.naive.n_physical
        ]
        assert len(depth_wins) >= 3  # parity8, comparator4, mux4, alu_slice
        assert cell_wins  # alu_slice shares its a^b node

    def test_parity8_depth_gain(self, suite_results):
        _, result = suite_results["parity8"]
        assert result.naive.physical_depth == 7
        assert result.optimized.physical_depth == 3

    def test_suite_lookup(self):
        from repro.synthesis import get_circuit

        assert get_circuit("mux4").name == "mux4"
        with pytest.raises(SynthesisError, match="unknown suite circuit"):
            get_circuit("nope")


class TestPhysicalConfirmation:
    def test_optimized_mapping_runs_physically(self, suite_results):
        """The strict comparator4 win survives the phasor engine."""
        _, result = suite_results["comparator4"]
        for report in (result.naive, result.optimized):
            physical = verify_physical(
                report.netlist, n_bits=2, modes=("phasor",), seed=5
            )["phasor"]
            assert physical.correct
            assert physical.min_margin > 0.2

    def test_optimized_mapping_survives_trace_mode(self, suite_results):
        """Waveform physics agrees with phasor decodes post-optimization."""
        _, result = suite_results["popcount5"]
        engine = CircuitEngine(result.optimized.netlist, n_bits=2)
        batch = [
            {name: (seed >> k) & 1
             for k, name in enumerate(result.optimized.netlist.inputs)}
            for seed in (0, 9, 21, 31)
        ]
        phasor = engine.run(batch)
        trace = engine.run(batch, mode="trace")
        assert phasor.correct and trace.correct
        assert trace.outputs == phasor.outputs

    def test_synthesis_gain_experiment_registered(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "synthesis-gain" in EXPERIMENTS

    def test_synthesis_gain_runs_and_reports(self):
        from repro.experiments import synthesis_gain
        from repro.synthesis import get_circuit

        results = synthesis_gain.run(
            circuits=[get_circuit("comparator4")], n_bits=2, n_groups=1
        )
        assert len(results["rows"]) == 1
        row = results["rows"][0]
        assert row["verified"]
        assert (
            row["optimized"]["physical_depth"]
            < row["naive"]["physical_depth"]
        )
        text = synthesis_gain.report(results)
        assert "comparator4" in text
        assert "trace-mode confirmation" in text
