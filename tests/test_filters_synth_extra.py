"""Tests for the FIR filter bank and the extra synthesis blocks."""

import math
from itertools import product

import numpy as np
import pytest

from repro.errors import NetlistError, ReadoutError
from repro.analysis.filters import (
    FilterBank,
    apply_fir,
    bandpass_kernel,
    lowpass_kernel,
)
from repro.analysis.phase import phase_at
from repro.circuits.synth import equality_comparator, multiplexer2


class TestKernels:
    def test_lowpass_unity_dc_gain(self):
        kernel = lowpass_kernel(10e9, 320e9, 101)
        assert kernel.sum() == pytest.approx(1.0)

    def test_lowpass_validation(self):
        with pytest.raises(ReadoutError):
            lowpass_kernel(200e9, 320e9, 101)  # above Nyquist
        with pytest.raises(ReadoutError):
            lowpass_kernel(10e9, 320e9, 100)  # even taps

    def test_bandpass_rejects_dc(self):
        kernel = bandpass_kernel(5e9, 15e9, 320e9, 201)
        assert abs(kernel.sum()) < 1e-6  # zero DC gain

    def test_bandpass_validation(self):
        with pytest.raises(ReadoutError):
            bandpass_kernel(15e9, 5e9, 320e9, 201)

    def test_bandpass_selectivity(self):
        rate = 320e9
        t = np.arange(0, 4e-9, 1.0 / rate)
        in_band = np.sin(2 * np.pi * 10e9 * t)
        out_band = np.sin(2 * np.pi * 40e9 * t)
        kernel = bandpass_kernel(7e9, 13e9, rate, 301)
        kept = apply_fir(in_band, kernel)
        rejected = apply_fir(out_band, kernel)
        interior = slice(400, -400)
        assert np.max(np.abs(kept[interior])) > 0.8
        assert np.max(np.abs(rejected[interior])) < 0.05

    def test_apply_fir_validation(self):
        with pytest.raises(ReadoutError):
            apply_fir(np.zeros(5), np.ones(11))


class TestFilterBank:
    def setup_method(self):
        self.rate = 640e9
        self.frequencies = [10e9, 20e9, 30e9]
        self.bank = FilterBank(self.frequencies, self.rate)

    def _trace(self, phases):
        t = np.arange(0, 4e-9, 1.0 / self.rate)
        trace = sum(
            np.sin(2 * np.pi * f * t + phase)
            for f, phase in zip(self.frequencies, phases)
        )
        return t, trace

    def test_split_returns_all_channels(self):
        _, trace = self._trace([0, 0, 0])
        split = self.bank.split(trace)
        assert set(split) == set(self.frequencies)

    def test_channel_phase_preserved(self):
        # Zero-phase filtering: the isolated channel keeps its phase.
        t, trace = self._trace([0.0, math.pi, 0.5])
        split = self.bank.split(trace)
        interior = slice(800, len(t) - 800)
        measured = phase_at(
            t[interior], split[20e9][interior], 20e9, t_start=t[interior][0]
        )
        assert abs(abs(measured) - math.pi) < 0.15

    def test_isolation(self):
        _, trace = self._trace([0, 0, 0])
        isolation = self.bank.isolation_db(trace, 20e9)
        assert isolation > 15.0

    def test_validation(self):
        with pytest.raises(ReadoutError):
            FilterBank([], 640e9)
        with pytest.raises(ReadoutError):
            FilterBank([400e9], 640e9)  # above Nyquist
        with pytest.raises(ReadoutError):
            self.bank.isolation_db(np.zeros(4096), 99e9)

    def test_byte_gate_trace_separates(self, byte_simulator):
        # End-to-end: filter-bank separation of a real gate trace
        # reproduces the per-channel decode of channel 0.
        words = [[1] * 8, [1] * 8, [0] * 8]
        result = byte_simulator.run(words)
        frequencies = byte_simulator.layout.plan.frequencies
        rate = 1.0 / (result.t[1] - result.t[0])
        bank = FilterBank(frequencies, rate)
        split = bank.split(result.traces[0])
        t_start = byte_simulator.settle_time()
        interior = result.t > t_start
        measured = phase_at(
            result.t[interior],
            split[frequencies[0]][interior],
            frequencies[0],
            t_start=t_start,
        )
        reference_phase, _ = byte_simulator.calibration()[0]
        relative = (measured - reference_phase + math.pi) % (2 * math.pi) - math.pi
        decoded = int(abs(relative) > math.pi / 2)
        assert decoded == result.decoded[0]


class TestMultiplexer:
    def test_truth_table(self):
        netlist, out = multiplexer2()
        for a, b, s in product((0, 1), repeat=3):
            outputs = netlist.evaluate({"a": a, "b": b, "s": s})
            assert outputs[out] == (b if s else a)

    def test_cell_budget(self):
        netlist, _ = multiplexer2()
        counts = netlist.cell_counts()
        assert counts["MAJ3"] == 3
        assert counts["INV"] == 1


class TestComparator:
    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_equality(self, width):
        from repro.core.encoding import int_to_bits

        netlist = equality_comparator(width)
        out = netlist.outputs[0]
        for a in range(2**width):
            for b in (a, (a + 1) % 2**width, (a ^ 0b101) % 2**width):
                assignments = {}
                for i, bit in enumerate(int_to_bits(a, width)):
                    assignments[f"a{i}"] = bit
                for i, bit in enumerate(int_to_bits(b, width)):
                    assignments[f"b{i}"] = bit
                assert netlist.evaluate(assignments)[out] == int(a == b)

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            equality_comparator(0)

    def test_depth_linear_in_width(self):
        assert equality_comparator(8).depth() > equality_comparator(2).depth()
