"""Tests for repro.materials."""

import math

import pytest

from repro.constants import MU0
from repro.errors import MaterialError
from repro.materials import FECOB_PMA, PERMALLOY, YIG, Material, get_material


class TestMaterialValidation:
    def test_negative_ms_rejected(self):
        with pytest.raises(MaterialError):
            Material("bad", ms=-1.0, aex=1e-12)

    def test_zero_aex_rejected(self):
        with pytest.raises(MaterialError):
            Material("bad", ms=1e6, aex=0.0)

    def test_negative_ku_rejected(self):
        with pytest.raises(MaterialError):
            Material("bad", ms=1e6, aex=1e-12, ku=-5.0)

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(MaterialError):
            Material("bad", ms=1e6, aex=1e-12, alpha=0.0)
        with pytest.raises(MaterialError):
            Material("bad", ms=1e6, aex=1e-12, alpha=1.5)

    def test_zero_axis_rejected(self):
        with pytest.raises(MaterialError):
            Material("bad", ms=1e6, aex=1e-12, anisotropy_axis=(0, 0, 0))

    def test_axis_is_normalised(self):
        material = Material("m", ms=1e6, aex=1e-12, anisotropy_axis=(0, 0, 2))
        assert material.anisotropy_axis == (0.0, 0.0, 1.0)


class TestDerivedQuantities:
    def test_paper_anisotropy_field(self):
        # H_ani = 2*Ku/(mu0*Ms) with the paper's numbers ~1.2035e6 A/m.
        expected = 2 * 8.3177e5 / (MU0 * 1.1e6)
        assert FECOB_PMA.anisotropy_field == pytest.approx(expected)
        assert FECOB_PMA.anisotropy_field == pytest.approx(1.2035e6, rel=1e-3)

    def test_paper_film_is_pma(self):
        # Section IV.B: H_anisotropy > Ms, no external field required.
        assert FECOB_PMA.is_pma

    def test_soft_materials_not_pma(self):
        assert not YIG.is_pma
        assert not PERMALLOY.is_pma

    def test_lambda_ex_definition(self):
        expected = 2 * FECOB_PMA.aex / (MU0 * FECOB_PMA.ms**2)
        assert FECOB_PMA.lambda_ex == pytest.approx(expected)

    def test_exchange_length_is_sqrt_lambda(self):
        assert FECOB_PMA.exchange_length == pytest.approx(
            math.sqrt(FECOB_PMA.lambda_ex)
        )

    def test_internal_field_perpendicular(self):
        h_int = FECOB_PMA.internal_field_perpendicular()
        assert h_int == pytest.approx(
            FECOB_PMA.anisotropy_field - FECOB_PMA.ms
        )
        assert h_int > 0

    def test_internal_field_with_bias(self):
        h0 = FECOB_PMA.internal_field_perpendicular()
        assert FECOB_PMA.internal_field_perpendicular(1e5) == pytest.approx(
            h0 + 1e5
        )

    def test_omega_m(self):
        assert FECOB_PMA.omega_m == pytest.approx(
            FECOB_PMA.gamma * MU0 * FECOB_PMA.ms
        )

    def test_with_override(self):
        doubled = FECOB_PMA.with_(alpha=0.008)
        assert doubled.alpha == 0.008
        assert doubled.ms == FECOB_PMA.ms
        assert FECOB_PMA.alpha == 0.004  # original untouched

    def test_summary_contains_name(self):
        assert "Fe60Co20B20" in FECOB_PMA.summary()


class TestLibrary:
    def test_lookup_by_alias(self):
        assert get_material("FeCoB") is FECOB_PMA
        assert get_material("fe60co20b20") is FECOB_PMA
        assert get_material("py") is PERMALLOY

    def test_lookup_normalises_separators(self):
        assert get_material("cofeb-ip").name == "CoFeB (in-plane)"

    def test_unknown_material_raises_with_choices(self):
        with pytest.raises(MaterialError, match="available"):
            get_material("unobtainium")

    def test_paper_parameters_exact(self):
        # The exact Section IV.B values.
        assert FECOB_PMA.ms == 1.1e6
        assert FECOB_PMA.aex == 18.5e-12
        assert FECOB_PMA.ku == 8.3177e5
        assert FECOB_PMA.alpha == 0.004
