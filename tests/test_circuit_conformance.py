"""Cross-backend conformance harness for circuit execution.

The engine exposes four execution semantics of one netlist; this module
pins them against each other on seeded randomized MAJ/XOR/INV/BUF DAGs
(:func:`repro.circuits.synth.random_netlist` -- fanout, constants and
virtual cells all occur) across nominal, noisy, faulty and
placement-noise configurations:

* **Boolean** -- :meth:`Netlist.evaluate_batch`, the exact logic
  reference (physics must match it bit-for-bit in nominal runs);
* **scalar cascade** -- :meth:`CircuitEngine.run_scalar`, one
  ``run_phasor`` / ``run`` call per (cell, word group), the pinned
  ground truth of both batched paths;
* **batched phasor** -- :meth:`CircuitEngine.run`, the steady-state
  GEMM path (pinned to scalar at <= 1e-12);
* **batched trace** -- ``run(mode="trace")``, full time-domain waveform
  generation with lock-in decode (pinned to its scalar loop at
  <= 1e-12, and decode-agreeing with the phasor path).

The fast lane exercises a handful of seeds; the full randomized sweep
(>= 20 seeds x {nominal, noisy, faulty}) is marked ``slow``.
"""

import random

import numpy as np
import pytest

from repro.circuits import (
    CellFault,
    CircuitEngine,
    CircuitExecutor,
    random_netlist,
)
from repro.circuits.library import PHYSICAL_BINDINGS, physical_arity
from repro.circuits.netlist import Netlist
from repro.core.faults import TransducerFault
from repro.core.simulate import GateSimulator
from repro.circuits.library import physical_gate
from repro.errors import NetlistError, SimulationError
from repro.waveguide import NoiseModel

TOL = 1e-12
N_BITS = 2

#: The randomized-sweep seed set: >= 20 seeded netlists (acceptance
#: criterion of the harness); the first FAST_SEEDS stay in the quick lane.
ALL_SEEDS = tuple(range(20))
FAST_SEEDS = ALL_SEEDS[:3]


def random_batch(netlist, seed, n_entries=6):
    """Deterministic random primary-input assignments."""
    rng = random.Random(1000 + seed)
    return [
        {name: rng.randint(0, 1) for name in netlist.inputs}
        for _ in range(n_entries)
    ]


def first_physical_cell(engine):
    """Name of the first transducer-level cell in the schedule (or None)."""
    for cells in engine.schedule:
        for node in cells:
            if node.kind in PHYSICAL_BINDINGS:
                return node
    return None


def seeded_fault(engine, seed, kind="stuck-phase-1"):
    """A deterministic CellFault at the first physical cell (or None)."""
    node = first_physical_cell(engine)
    if node is None:
        return None
    return CellFault(
        node.name,
        TransducerFault(
            kind,
            channel=seed % engine.n_bits,
            input_index=seed % physical_arity(node.kind),
        ),
    )


def assert_pinned(result, reference):
    """A batched CircuitRunResult equals its scalar reference <= 1e-12."""
    assert result.outputs == reference.outputs
    assert result.failed == reference.failed
    assert set(result.cells) == set(reference.cells)
    for name, record in result.cells.items():
        ref = reference.cells[name]
        assert record.bits == ref.bits
        if record.margins is None:
            assert ref.margins is None
            continue
        np.testing.assert_allclose(
            record.margins, ref.margins, rtol=TOL, atol=TOL
        )
        np.testing.assert_allclose(
            record.amplitudes, ref.amplitudes, rtol=TOL, atol=TOL
        )


def assert_decode_agreement(trace, phasor):
    """Trace and phasor semantics decode every cell identically."""
    assert trace.outputs == phasor.outputs
    assert trace.failed == phasor.failed
    for name in trace.cells:
        assert trace.cells[name].bits == phasor.cells[name].bits


def cross_check(engine, batch, faults=(), noise=None):
    """All four backends on one configuration; returns (phasor, trace)."""
    phasor = engine.run(batch, faults=faults, noise=noise, strict=False)
    phasor_ref = engine.run_scalar(
        batch, faults=faults, noise=noise, strict=False
    )
    trace = engine.run(
        batch, faults=faults, noise=noise, strict=False, mode="trace"
    )
    trace_ref = engine.run_scalar(
        batch, faults=faults, noise=noise, strict=False, mode="trace"
    )
    assert phasor.mode == phasor_ref.mode == "phasor"
    assert trace.mode == trace_ref.mode == "trace"
    assert_pinned(phasor, phasor_ref)
    assert_pinned(trace, trace_ref)
    assert_decode_agreement(trace, phasor)
    if not faults and noise is None:
        expected = engine.netlist.evaluate_batch(batch)
        assert phasor.correct
        assert trace.correct
        assert phasor.outputs == expected
        assert trace.outputs == expected
    return phasor, trace


# ----------------------------------------------------------------------
# Fast lane: a handful of seeds through every configuration
# ----------------------------------------------------------------------
class TestConformanceFast:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_nominal(self, seed):
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        cross_check(engine, random_batch(netlist, seed))

    @pytest.mark.parametrize("seed", FAST_SEEDS[:2])
    def test_noisy(self, seed):
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        noise = NoiseModel(
            amplitude_sigma=0.03, phase_sigma=0.05, seed=40 + seed
        )
        cross_check(engine, random_batch(netlist, seed), noise=noise)

    @pytest.mark.parametrize("kind", ["stuck-phase-1", "weak-source"])
    def test_faulty(self, kind):
        seed = FAST_SEEDS[0]
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        fault = seeded_fault(engine, seed, kind=kind)
        assert fault is not None
        cross_check(engine, random_batch(netlist, seed), faults=[fault])

    def test_placement_noise_fallback(self):
        """Per-entry placement noise exercises the per-source trace path.

        Position jitter breaks shared geometry, so the batched trace
        falls back from the carrier-basis GEMM to the general per-source
        loop -- and must still pin to the scalar reference.
        """
        seed = FAST_SEEDS[1]
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        noise = NoiseModel(position_sigma=1e-9, seed=60 + seed)
        batch = random_batch(netlist, seed, n_entries=4)
        engine.run(batch, mode="trace")  # nominal: populates the basis cache
        cached = len(engine.model()._basis_cache)
        assert cached > 0
        cross_check(engine, batch, noise=noise)
        # Jittered geometries never repeat and must not be memoised.
        assert len(engine.model()._basis_cache) == cached

    def test_multi_fault_conformance(self):
        """Distinct-cell fault lists conform across all four backends."""
        seed = FAST_SEEDS[2]
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        physical = [
            node
            for cells in engine.schedule
            for node in cells
            if node.kind in PHYSICAL_BINDINGS
        ]
        assert len(physical) >= 2
        faults = [
            CellFault(
                physical[0].name,
                TransducerFault("stuck-phase-1", channel=0, input_index=0),
            ),
            CellFault(
                physical[1].name,
                TransducerFault("dead-source", channel=1, input_index=0),
            ),
        ]
        cross_check(engine, random_batch(netlist, seed), faults=faults)


# ----------------------------------------------------------------------
# Coalesced serving: many requests in one packed block pin to standalone
# ----------------------------------------------------------------------
class TestCoalescedConformance:
    """Coalesced executor blocks reproduce uncoalesced runs <= 1e-12.

    Three requests -- nominal, noisy and faulty -- are queued against
    structurally equal netlists (distinct objects, same content hash)
    and executed as ONE packed block; every ticket must pin to the
    per-op, uncoalesced ``CircuitEngine.run(packed=False)`` reference.
    """

    @pytest.mark.parametrize("mode", ["phasor", "trace"])
    def test_coalesced_block_matches_standalone(self, mode):
        seed = FAST_SEEDS[0]
        netlist = random_netlist(seed)
        twin = random_netlist(seed)  # same signature, different object
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        noise = NoiseModel(
            amplitude_sigma=0.03, phase_sigma=0.05, seed=70 + seed
        )
        fault = seeded_fault(engine, seed)
        assert fault is not None
        configs = [
            (random_batch(netlist, seed), (), None),
            (random_batch(netlist, seed + 1), (), noise),
            (random_batch(netlist, seed + 2), (fault,), None),
        ]
        tickets = [
            executor.submit(
                twin if index % 2 else netlist,
                batch,
                faults=faults,
                noise=noise_model,
                strict=False,
                mode=mode,
            )
            for index, (batch, faults, noise_model) in enumerate(configs)
        ]
        assert executor.pending_words == sum(
            len(batch) for batch, _, _ in configs
        )
        executor.flush()
        assert executor.stats["blocks"] == 1
        assert executor.stats["coalesced_requests"] == len(configs)
        assert executor.stats["fallbacks"] == 0
        for ticket, (batch, faults, noise_model) in zip(tickets, configs):
            assert ticket.done
            reference = engine.run(
                batch,
                faults=faults,
                noise=noise_model,
                strict=False,
                mode=mode,
                packed=False,
            )
            assert_pinned(ticket.result(), reference)

    def test_auto_flush_at_max_block(self):
        seed = FAST_SEEDS[1]
        netlist = random_netlist(seed)
        batch = random_batch(netlist, seed, n_entries=4)
        executor = CircuitExecutor(n_bits=N_BITS, max_block=8)
        first = executor.submit(netlist, batch, strict=False)
        assert not first.done and executor.pending_words == 4
        second = executor.submit(netlist, batch, strict=False)
        # The second submission reached the high-water mark: both ran.
        assert first.done and second.done
        assert executor.pending_words == 0
        assert executor.stats["blocks"] == 1
        assert_pinned(
            second.result(), CircuitEngine(netlist, n_bits=N_BITS).run(
                batch, strict=False, packed=False
            )
        )

    def test_mixed_arity_noise_coalescing(self):
        """Colliding derived noise seeds across group counts stay arity-safe.

        Two noisy requests with different group counts derive *equal*
        per-(cell, group) NoiseModels for different physical cells, so
        the block's perturbation-draw cache sees one seed at two source
        arities (XOR2 vs MAJ3); each row must still receive a draw of
        its own width (regression: a reused XOR2-width array raised a
        broadcast ValueError that aborted the whole block).
        """
        netlist = Netlist("mixed")
        for name in ("a", "b", "c"):
            netlist.add_input(name)
        netlist.add_cell("x", "XOR2", ("a", "b"))
        netlist.add_cell("m", "MAJ3", ("a", "b", "c"))
        netlist.mark_output("x")
        netlist.mark_output("m")
        noise = NoiseModel(amplitude_sigma=0.03, phase_sigma=0.05, seed=7)
        rng = random.Random(7)
        batches = [
            [
                {name: rng.randint(0, 1) for name in netlist.inputs}
                for _ in range(n_entries)
            ]
            for n_entries in (4, 2)  # 2 groups vs 1 group at n_bits=2
        ]
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        tickets = [
            executor.submit(netlist, batch, noise=noise, strict=False)
            for batch in batches
        ]
        executor.flush()
        assert executor.stats["blocks"] == 1
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        for ticket, batch in zip(tickets, batches):
            reference = engine.run(
                batch, noise=noise, strict=False, packed=False
            )
            assert_pinned(ticket.result(), reference)

    def test_block_failure_resolves_every_ticket(self, monkeypatch):
        """Non-ReproError block failures surface through every ticket.

        A failure inside the packed pass must resolve all coalesced
        tickets with the error -- ``result()`` re-raises it instead of
        silently returning None for stranded requests.
        """
        seed = FAST_SEEDS[0]
        netlist = random_netlist(seed)
        batch = random_batch(netlist, seed, n_entries=2)
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        tickets = [
            executor.submit(netlist, batch, strict=False) for _ in range(2)
        ]
        artifact = executor.cache.get_or_compile(netlist, executor.bindings)

        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(artifact, "_execute_padded", boom)
        executor.flush()
        for ticket in tickets:
            assert ticket.done
            with pytest.raises(RuntimeError, match="kernel exploded"):
                ticket.result()

    def test_mutation_after_submit_fails_only_its_own_ticket(self):
        """A netlist mutated between submit and flush fails loudly.

        The mutated request's ticket raises a clear NetlistError; its
        unmutated coalesced neighbour still executes and pins to the
        standalone reference.
        """
        seed = FAST_SEEDS[1]
        netlist = random_netlist(seed)
        twin = random_netlist(seed)  # same submit-time signature
        batch = random_batch(netlist, seed, n_entries=2)
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        healthy = executor.submit(twin, batch, strict=False)
        doomed = executor.submit(netlist, batch, strict=False)
        netlist.add_cell("late_inv", "INV", (netlist.inputs[0],))
        netlist.mark_output("late_inv")
        executor.flush()
        assert doomed.done
        with pytest.raises(NetlistError, match="mutated"):
            doomed.result()
        reference = CircuitEngine(twin, n_bits=N_BITS).run(
            batch, strict=False, packed=False
        )
        assert_pinned(healthy.result(), reference)

    def test_position_noise_falls_back_per_request(self):
        seed = FAST_SEEDS[2]
        netlist = random_netlist(seed)
        batch = random_batch(netlist, seed, n_entries=4)
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        noise = NoiseModel(position_sigma=1e-9, seed=90 + seed)
        ticket = executor.submit(netlist, batch, noise=noise, strict=False)
        # Placement jitter cannot ride the packed block: served eagerly.
        assert ticket.done
        assert executor.stats["fallbacks"] == 1
        assert executor.stats["blocks"] == 0
        reference = CircuitEngine(netlist, n_bits=N_BITS).run(
            batch, noise=noise, strict=False, packed=False
        )
        assert_pinned(ticket.result(), reference)


# ----------------------------------------------------------------------
# Gate-level strictness of the trace batch (the engine relies on it)
# ----------------------------------------------------------------------
class TestTraceBatchStrictness:
    def test_undecodable_trace_entries_yield_none(self):
        """strict=False turns decode failures into None entries."""
        gate = physical_gate("MAJ3", 1)
        simulator = GateSimulator(gate, amplitudes=np.zeros((1, 3)))
        patterns = gate.exhaustive_patterns()
        with pytest.raises(SimulationError):
            simulator.run_batch(patterns)
        runs = simulator.run_batch(patterns, strict=False)
        assert runs == [None] * len(patterns)

    def test_strict_default_matches_scalar_run(self):
        gate = physical_gate("XOR2", 2)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        batched = simulator.run_batch(patterns, strict=False)
        for run, words in zip(batched, patterns):
            reference = simulator.run(words)
            assert run.decoded == reference.decoded
            np.testing.assert_allclose(
                [d.margin for d in run.decodes],
                [d.margin for d in reference.decodes],
                rtol=TOL,
                atol=TOL,
            )


# ----------------------------------------------------------------------
# Full randomized sweep (slow lane): >= 20 seeds x 3 configurations
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestConformanceSweep:
    @pytest.mark.parametrize("seed", ALL_SEEDS)
    def test_seeded_netlist_conformance(self, seed):
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        batch = random_batch(netlist, seed)
        # Nominal.
        cross_check(engine, batch)
        # Noisy (amplitude + phase jitter, per-(cell, group) seeds).
        noise = NoiseModel(
            amplitude_sigma=0.03, phase_sigma=0.08, seed=500 + seed
        )
        cross_check(engine, batch, noise=noise)
        # Faulty (seed-dependent victim/channel/input).
        kind = ("stuck-phase-1", "stuck-phase-0", "weak-source")[seed % 3]
        fault = seeded_fault(engine, seed, kind=kind)
        if fault is not None:
            cross_check(engine, batch, faults=[fault])


class TestFloat32Conformance:
    """Circuit-level conformance of the single-precision backend.

    The default-backend classes pin packed/trace execution to the
    scalar reference at <= 1e-12; here the float32 variant must decode
    every randomized netlist identically (rounding at ~1e-5 relative
    never approaches the decode margins) with margins tracking the
    float64 ground truth at a slack 1e-4 tolerance.
    """

    TOL32 = 1e-4

    def _engines(self, seed):
        from repro.backends import NumpyBackend
        from repro.circuits.library import GateBindings

        netlist = random_netlist(seed=seed)
        reference = CircuitEngine(netlist, n_bits=N_BITS)
        bindings = GateBindings(
            n_bits=N_BITS, backend=NumpyBackend("single")
        )
        return netlist, reference, CircuitEngine(netlist, bindings=bindings)

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_packed_phasor_tracks_float64(self, seed):
        netlist, engine64, engine32 = self._engines(seed)
        batch = random_batch(netlist, seed)
        result64 = engine64.run(batch)
        result32 = engine32.run(batch)
        assert result32.outputs == result64.outputs
        assert result32.outputs == netlist.evaluate_batch(batch)
        assert result32.failed == result64.failed
        for name, record in result32.cells.items():
            ref = result64.cells[name]
            assert record.bits == ref.bits
            if record.margins is None:
                continue
            np.testing.assert_allclose(
                record.margins, ref.margins, rtol=self.TOL32, atol=self.TOL32
            )

    @pytest.mark.parametrize("seed", FAST_SEEDS[:2])
    def test_trace_decode_agrees_with_float64(self, seed):
        netlist, engine64, engine32 = self._engines(seed)
        batch = random_batch(netlist, seed, n_entries=3)
        result64 = engine64.run(batch, mode="trace")
        result32 = engine32.run(batch, mode="trace")
        assert result32.outputs == result64.outputs
        assert result32.failed == result64.failed
        for name in result32.cells:
            assert result32.cells[name].bits == result64.cells[name].bits
