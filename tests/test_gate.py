"""Tests for repro.core.gate."""

from itertools import product

import pytest

from repro.errors import EncodingError
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate, GateKind, majority, parity
from repro.core.layout import InlineGateLayout
from repro.units import GHZ
from repro.waveguide import Waveguide


@pytest.fixture(scope="module")
def waveguide():
    return Waveguide()


def _layout(waveguide, n_inputs, n_bits=2, inverted=None):
    plan = FrequencyPlan.uniform(n_bits, 10 * GHZ, 10 * GHZ)
    return InlineGateLayout(
        waveguide, plan, n_inputs=n_inputs, inverted_outputs=inverted
    )


class TestBooleanPrimitives:
    def test_majority3_truth_table(self):
        expected = {
            (0, 0, 0): 0, (0, 0, 1): 0, (0, 1, 0): 0, (1, 0, 0): 0,
            (0, 1, 1): 1, (1, 0, 1): 1, (1, 1, 0): 1, (1, 1, 1): 1,
        }
        for bits, value in expected.items():
            assert majority(bits) == value

    def test_majority5(self):
        assert majority([1, 1, 1, 0, 0]) == 1
        assert majority([1, 1, 0, 0, 0]) == 0

    def test_majority_rejects_even(self):
        with pytest.raises(EncodingError):
            majority([1, 0])

    def test_parity(self):
        assert parity([1, 0, 0]) == 1
        assert parity([1, 1, 0]) == 0
        assert parity([]) == 0


class TestMajorityGate:
    def test_expected_output_bitwise(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=4)
        gate = DataParallelGate(layout)
        a = [1, 1, 0, 0]
        b = [1, 0, 1, 0]
        c = [0, 1, 1, 1]
        assert gate.expected_output([a, b, c]) == [1, 1, 1, 0]

    def test_even_fanin_rejected(self, waveguide):
        layout = _layout(waveguide, 4)
        with pytest.raises(EncodingError):
            DataParallelGate(layout, kind=GateKind.MAJORITY)

    def test_wrong_word_count(self, waveguide):
        gate = DataParallelGate(_layout(waveguide, 3))
        with pytest.raises(EncodingError):
            gate.expected_output([[0, 0]])

    def test_wrong_word_width(self, waveguide):
        gate = DataParallelGate(_layout(waveguide, 3, n_bits=2))
        with pytest.raises(EncodingError):
            gate.expected_output([[0], [0], [0]])

    def test_truth_table_size(self, waveguide):
        gate = DataParallelGate(_layout(waveguide, 3))
        table = gate.truth_table()
        assert len(table) == 8
        assert table[0] == ((0, 0, 0), 0)
        assert table[-1] == ((1, 1, 1), 1)

    def test_inverted_channel_flips_expected(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=2, inverted=[True, False])
        gate = DataParallelGate(layout)
        words = [[1, 1], [1, 1], [0, 0]]
        assert gate.expected_output(words) == [0, 1]
        assert gate.expected_output(words, apply_inversion=False) == [1, 1]

    def test_describe(self, waveguide):
        gate = DataParallelGate(_layout(waveguide, 3))
        assert "MAJORITY" in gate.describe()


class TestDerivedGates:
    def test_and_via_majority(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=1)
        gate = DataParallelGate(layout, kind=GateKind.AND)
        assert gate.n_data_inputs == 2
        for a, b in product((0, 1), repeat=2):
            assert gate.expected_output([[a], [b]]) == [a & b]

    def test_or_via_majority(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=1)
        gate = DataParallelGate(layout, kind=GateKind.OR)
        for a, b in product((0, 1), repeat=2):
            assert gate.expected_output([[a], [b]]) == [a | b]

    def test_and_requires_three_sources(self, waveguide):
        with pytest.raises(EncodingError):
            DataParallelGate(_layout(waveguide, 2), kind=GateKind.AND)

    def test_xor_truth_table(self, waveguide):
        layout = _layout(waveguide, 2, n_bits=1)
        gate = DataParallelGate(layout, kind=GateKind.XOR)
        for a, b in product((0, 1), repeat=2):
            assert gate.expected_output([[a], [b]]) == [a ^ b]

    def test_xnor_truth_table(self, waveguide):
        layout = _layout(waveguide, 2, n_bits=1)
        gate = DataParallelGate(layout, kind=GateKind.XNOR)
        for a, b in product((0, 1), repeat=2):
            assert gate.expected_output([[a], [b]]) == [1 - (a ^ b)]

    def test_xor_needs_two_inputs(self, waveguide):
        with pytest.raises(EncodingError):
            DataParallelGate(_layout(waveguide, 3), kind=GateKind.XOR)

    def test_amplitude_readout_flag(self):
        assert GateKind.XOR.uses_amplitude_readout
        assert GateKind.XNOR.uses_amplitude_readout
        assert not GateKind.MAJORITY.uses_amplitude_readout


class TestPhysicalInputBits:
    def test_constants_appended(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=2)
        gate = DataParallelGate(layout, kind=GateKind.AND)
        per_channel = gate.physical_input_bits([[1, 0], [1, 1]])
        assert per_channel == [(1, 1, 0), (0, 1, 0)]

    def test_majority_passthrough(self, waveguide):
        layout = _layout(waveguide, 3, n_bits=2)
        gate = DataParallelGate(layout)
        per_channel = gate.physical_input_bits([[1, 0], [0, 1], [1, 1]])
        assert per_channel == [(1, 0, 1), (0, 1, 1)]
