"""The serving daemon: HTTP round-trips pinned against in-process runs.

The conformance bar for ``repro.serve``: everything a client receives
over the wire -- output bits, expected bits, failure flags, per-level
margins, fault echoes, error classes -- must match what the same
request served through an in-process :class:`CircuitExecutor` yields,
to <= 1e-12 on margins and bit-identically on logic.  Also covers the
daemon's introspection endpoints, its error -> HTTP status mapping,
warm start over the executor, and concurrent clients exercising the
executor's submit/flush lock.
"""

import json
import math
import re
import threading

import pytest

from repro.circuits import (
    CellFault,
    CircuitExecutor,
    GateBindings,
    compile_circuit,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.core.faults import TransducerFault
from repro.errors import NetlistError, ServeError, SimulationError
from repro.serve import CircuitServer, ServeClient
from repro.waveguide.noise import NoiseModel

N_BITS = 2

PIN = 1e-12


def xor_pair(title):
    netlist = Netlist(title)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell("x", "XOR2", ("a", "b"))
    netlist.add_cell("y", "XOR2", ("x", "c"))
    netlist.mark_output("y")
    return netlist


BATCH = [
    {"a": 0, "b": 1, "c": 1},
    {"a": 1, "b": 1, "c": 0},
    {"a": 1, "b": 0, "c": 1},
]


@pytest.fixture()
def server():
    with CircuitServer(n_bits=N_BITS, max_latency=0.002) as daemon:
        yield daemon


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def reference_run(**kwargs):
    """The same request served by a fresh in-process executor."""
    executor = CircuitExecutor(n_bits=N_BITS)
    return executor.run(**kwargs)


def assert_pinned(remote, local):
    """Remote result == in-process result (bits exact, margins <= PIN)."""
    assert remote.outputs == local.outputs
    assert remote.expected == local.expected
    assert list(remote.failed) == list(local.failed)
    assert remote.n_entries == local.n_entries
    assert remote.mode == local.mode
    assert remote.correct == local.correct
    assert len(remote.levels) == len(local.levels)
    for mine, theirs in zip(remote.levels, local.levels):
        assert mine.level == theirs.level
        assert mine.n_cells == theirs.n_cells
        if theirs.min_margin is None or math.isnan(theirs.min_margin):
            assert mine.min_margin is None or math.isnan(mine.min_margin)
        else:
            assert abs(mine.min_margin - theirs.min_margin) <= PIN


class TestRunRoundTrips:
    def test_phasor_pinned_to_in_process(self, client):
        remote = client.run(xor_pair("wire"), BATCH)
        local = reference_run(
            netlist=xor_pair("wire"), assignments_batch=BATCH
        )
        assert_pinned(remote, local)

    def test_trace_pinned_to_in_process(self, client):
        remote = client.run(xor_pair("wire"), BATCH, mode="trace")
        local = reference_run(
            netlist=xor_pair("wire"), assignments_batch=BATCH,
            mode="trace",
        )
        assert_pinned(remote, local)

    def test_faults_and_noise_pinned(self, client):
        """Seeded noise + an injected fault realise identically on both
        sides of the wire (the executor derives per-(cell, group) noise
        from the seed, so transport cannot perturb it)."""
        faults = [
            CellFault("x", TransducerFault(
                "dead-source", channel=1, input_index=0, severity=0.6,
            ))
        ]
        noise = NoiseModel(amplitude_sigma=0.03, phase_sigma=0.02, seed=11)
        remote = client.run(
            xor_pair("noisy"), BATCH, faults=faults, noise=noise,
            strict=False,
        )
        local = reference_run(
            netlist=xor_pair("noisy"), assignments_batch=BATCH,
            faults=faults, noise=noise, strict=False,
        )
        assert_pinned(remote, local)
        assert [f.cell for f in remote.faults] == ["x"]

    def test_position_noise_rides_the_fallback_path(self, client, server):
        noise = NoiseModel(position_sigma=5e-9, seed=3)
        remote = client.run(
            xor_pair("placed"), BATCH, noise=noise, strict=False
        )
        local = reference_run(
            netlist=xor_pair("placed"), assignments_batch=BATCH,
            noise=noise, strict=False,
        )
        assert_pinned(remote, local)
        assert server.executor.stats["fallbacks"] == 1

    def test_adder_round_trip(self, client):
        netlist = ripple_carry_adder(3)
        batch = [{"a0": 1, "a1": 1, "a2": 0, "b0": 1, "b1": 0, "b2": 1}]
        remote = client.run(netlist, batch)
        local = reference_run(netlist=netlist, assignments_batch=batch)
        assert_pinned(remote, local)

    def test_cells_opt_in(self, client):
        lean = client.run(xor_pair("lean"), BATCH)
        assert lean.cells == {}
        full = client.run(xor_pair("full"), BATCH, cells=True)
        assert set(full.cells) == {"x", "y"}
        local = reference_run(
            netlist=xor_pair("full"), assignments_batch=BATCH
        )
        assert full.cells["y"].bits == local.cells["y"].bits


class TestErrorMapping:
    def test_missing_input_raises_netlist_error(self, client):
        with pytest.raises(NetlistError, match="no value supplied"):
            client.run(xor_pair("m"), [{"a": 0, "b": 1}])

    def test_unknown_mode_raises_netlist_error(self, client):
        with pytest.raises(NetlistError, match="unknown execution mode"):
            client.run(xor_pair("m"), BATCH, mode="spice")

    def test_validation_errors_are_http_400(self, client):
        from repro.serve import protocol

        payload = protocol.encode_run_request(
            xor_pair("status"), [{"a": 0, "b": 1}]  # missing input c
        )
        status, body = client._request("POST", "/v1/run", payload)
        assert status == 400
        assert json.loads(body)["error"]["type"] == "NetlistError"

    def test_strict_decode_failure_is_http_422(self, client, monkeypatch):
        from repro.circuits import compiled as compiled_mod

        monkeypatch.setattr(
            compiled_mod.CompiledCircuit,
            "_first_dead",
            lambda self, packed, start, end: SimulationError(
                "decode of cell 'y' is dead"
            ),
        )
        from repro.serve import protocol

        payload = protocol.encode_run_request(xor_pair("dead"), BATCH)
        status, body = client._request("POST", "/v1/run", payload)
        assert status == 422
        assert json.loads(body)["error"]["type"] == "SimulationError"
        # And the typed client re-raises the in-process class.
        with pytest.raises(SimulationError, match="dead"):
            client.run(xor_pair("dead"), BATCH)

    def test_invalid_json_body_is_http_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.url + "/v1/run", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_unknown_route_is_http_404(self, client):
        status, _ = client._request("GET", "/nope")
        assert status == 404
        status, _ = client._request("POST", "/v2/run", {})
        assert status == 404


class TestIntrospection:
    def test_healthz(self, client, server):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert health["n_bits"] == N_BITS
        assert health["uptime_s"] >= 0
        assert health["backend"] == server.executor.bindings.backend.tag

    def test_stats_expose_executor_counters(self, client):
        client.run(xor_pair("s"), BATCH)
        stats = client.stats()
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["words"] == len(BATCH)
        assert stats["compile_cache"]["misses"] == 1
        assert "packed blocks" in stats["describe"]

    def test_metrics_text_and_json(self, client):
        client.run(xor_pair("m"), BATCH)
        text = client.metrics()
        assert "executor.requests" in text
        assert "serve.requests" in text
        snapshot = client.metrics(format="json")
        assert snapshot["counters"]["serve.requests"] >= 1
        assert snapshot["counters"]["executor.requests"] == 1

    def test_server_error_counters(self, client, server):
        with pytest.raises(NetlistError):
            client.run(xor_pair("e"), [{"a": 0}])
        assert server.obs.counter("serve.errors.400") == 1


class TestRequestTracing:
    def test_run_response_carries_timing_breakdown(self, client, server):
        remote = client.run(xor_pair("traced"), BATCH)
        trace = remote.trace
        assert trace is not None
        assert trace.request_id.startswith("req-")
        assert trace.path == "packed"
        assert trace.mode == "phasor"
        assert trace.n_entries == len(BATCH)
        assert trace.compile_cache == "miss"
        assert trace.block_id == "blk-1"
        assert trace.block_requests == 1
        assert trace.block_words == len(BATCH)
        assert trace.coalesced_with == []
        # Generous bounds: the sweep thread flushes within max_latency
        # plus scheduling slack, never anywhere near half a second.
        assert 0.0 <= trace.queue_wait_s <= 0.5
        assert trace.compile_s > 0.0
        assert trace.execute_s > 0.0
        assert trace.decode_s > 0.0
        assert trace.total_s == pytest.approx(
            trace.queue_wait_s + trace.compile_s + trace.execute_s
            + trace.decode_s
        )

    def test_wire_trace_matches_in_process_ticket(self, server):
        """The trace a remote client decodes is field-for-field the one
        recorded on the in-process ticket the daemon waited on."""
        client = ServeClient(server.url)
        remote = client.run(xor_pair("pin"), BATCH, request_id="pin-1")
        ticket_ids = [
            event["request_ids"]
            for event in server.events.tail(kind="block")
        ]
        assert ["pin-1"] in ticket_ids
        # Same request served in-process: identical breakdown shape.
        executor = CircuitExecutor(n_bits=N_BITS, max_latency=0.002)
        ticket = executor.submit(
            xor_pair("pin"), BATCH, request_id="pin-1"
        )
        local = ticket.result()
        assert local.trace is ticket.trace
        assert set(remote.trace.as_dict()) == set(local.trace.as_dict())
        for field in ("request_id", "mode", "path", "n_entries",
                      "block_requests", "block_words", "coalesced_with"):
            assert getattr(remote.trace, field) == getattr(
                local.trace, field
            )

    def test_client_request_id_rides_header_and_echoes(self, client):
        import urllib.request

        from repro.serve import protocol

        remote = client.run(xor_pair("named"), BATCH, request_id="abc-9")
        assert remote.trace.request_id == "abc-9"
        payload = protocol.encode_run_request(xor_pair("named"), BATCH)
        request = urllib.request.Request(
            client.url + "/v1/run",
            data=json.dumps(payload).encode(),
            headers={"X-Request-Id": "hdr-7"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "hdr-7"
            body = json.loads(response.read())
        assert body["trace"]["request_id"] == "hdr-7"

    def test_untraced_server_returns_no_trace(self):
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, trace_requests=False
        ) as daemon:
            client = ServeClient(daemon.url)
            result = client.run(xor_pair("lean"), BATCH)
        assert result.trace is None
        assert result.correct

    def test_coalesced_requests_name_each_other(self, server):
        barrier = threading.Barrier(4)
        traces = {}

        def run(index):
            barrier.wait(timeout=10)
            traces[index] = ServeClient(server.url).run(
                xor_pair("share"), BATCH, request_id=f"peer-{index}"
            ).trace

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(traces) == 4
        # Every request that shared a block lists its block peers.
        for index, trace in traces.items():
            peers = {
                i for i, other in traces.items()
                if other.block_id == trace.block_id and i != index
            }
            assert set(trace.coalesced_with) == {
                f"peer-{i}" for i in peers
            }
            assert trace.block_requests == 1 + len(peers)


# Minimal Prometheus text-format parser: enough grammar to verify the
# exposition is well-formed without any third-party scraper.
_PROM_SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'        # metric name
    r'(?:\{le="([^"]*)"\})?'              # optional le label
    r' (-?(?:\d+\.?\d*(?:e-?\d+)?|NaN|\+Inf|-Inf))$'  # value
)


def parse_prometheus(text):
    """``{name: {"type": ..., "samples": [(le, value), ...]}}``."""
    metrics = {}
    declared = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split()
            declared[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        match = _PROM_SAMPLE.match(line)
        assert match, f"malformed sample line {line!r}"
        name, le, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = metrics.setdefault(
            base if base in declared else name,
            {"samples": []},
        )
        family["samples"].append((name, le, float(value)))
    for name, kind in declared.items():
        metrics[name]["type"] = kind
    return metrics


class TestPrometheusExposition:
    def test_endpoint_round_trips_through_parser(self, client):
        client.run(xor_pair("prom"), BATCH)
        text = client.metrics(format="prometheus")
        metrics = parse_prometheus(text)
        assert metrics["serve_requests_total"]["type"] == "counter"
        (sample,) = metrics["serve_requests_total"]["samples"]
        assert sample[2] >= 1.0

    def test_histograms_are_cumulative_and_consistent(self, client):
        client.run(xor_pair("prom2"), BATCH)
        metrics = parse_prometheus(client.metrics(format="prometheus"))
        histograms = {
            name: family for name, family in metrics.items()
            if family.get("type") == "histogram"
        }
        assert "serve_request_s" in histograms
        assert "executor_queue_latency_s" in histograms
        for name, family in histograms.items():
            buckets = [
                (le, value) for sample, le, value in family["samples"]
                if sample == f"{name}_bucket"
            ]
            counts = [value for _, value in buckets]
            # Monotone non-decreasing cumulative counts, +Inf last.
            assert counts == sorted(counts), name
            assert buckets[-1][0] == "+Inf", name
            total = next(
                value for sample, _, value in family["samples"]
                if sample == f"{name}_count"
            )
            assert buckets[-1][1] == total, name
            assert any(
                sample == f"{name}_sum" for sample, _, _ in family["samples"]
            ), name

    def test_content_type_is_versioned(self, client):
        import urllib.request

        for path in ("/metrics", "/metrics?format=prometheus"):
            with urllib.request.urlopen(
                client.url + path, timeout=10
            ) as response:
                assert response.headers["Content-Type"] == (
                    "text/plain; version=0.0.4; charset=utf-8"
                ), path


class TestEventLog:
    def test_access_events_cover_get_and_post(self, client):
        client.run(xor_pair("logged"), BATCH, request_id="evt-1")
        client.healthz()
        events = client.logs(kind="access")["events"]
        posts = [e for e in events if e["method"] == "POST"]
        gets = [e for e in events if e["method"] == "GET"]
        assert posts and gets
        run_event = posts[0]
        assert run_event["path"] == "/v1/run"
        assert run_event["status"] == 200
        assert run_event["request_id"] == "evt-1"
        assert run_event["words"] == len(BATCH)
        assert run_event["block_id"] == "blk-1"
        assert run_event["latency_ms"] >= 0.0

    def test_error_events_capture_class(self, client):
        with pytest.raises(NetlistError):
            client.run(xor_pair("bad"), [{"a": 0}], request_id="err-1")
        (event,) = client.logs(kind="error")["events"]
        assert event["type"] == "NetlistError"
        assert event["status"] == 400
        assert event["request_id"] == "err-1"

    def test_error_class_counter(self, client, server):
        with pytest.raises(NetlistError):
            client.run(xor_pair("bad"), [{"a": 0}])
        assert server.obs.counter("serve.errors.class.NetlistError") == 1

    def test_slow_request_capture_includes_trace(self):
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, slow_request_s=0.0
        ) as daemon:
            client = ServeClient(daemon.url)
            client.run(xor_pair("slow"), BATCH, request_id="slow-1")
            (event,) = client.logs(kind="slow_request")["events"]
        assert event["request_id"] == "slow-1"
        assert event["trace"]["block_id"] == "blk-1"
        assert event["latency_ms"] >= 0.0

    def test_logs_endpoint_limits_and_filters(self, client):
        for _ in range(3):
            client.healthz()
        payload = client.logs(n=2, kind="access")
        assert len(payload["events"]) == 2
        assert payload["capacity"] == 512
        assert all(e["kind"] == "access" for e in payload["events"])

    def test_access_log_sink_mirrors_events(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, access_log=str(path)
        ) as daemon:
            client = ServeClient(daemon.url)
            client.run(xor_pair("sunk"), BATCH)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = {line["kind"] for line in lines}
        assert "access" in kinds
        assert "block" in kinds

    def test_disabled_event_log(self):
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, log_capacity=0
        ) as daemon:
            client = ServeClient(daemon.url)
            client.run(xor_pair("quiet"), BATCH)
            payload = client.logs()
        assert payload == {"events": [], "capacity": 0, "dropped": 0}


def _monitor_sample(t, counters, histograms=None):
    return {
        "t": t,
        "healthz": {
            "backend": "numpy64", "n_bits": 2, "uptime_s": t,
            "pending_words": 0,
        },
        "stats": {},
        "metrics": {
            "counters": counters, "histograms": histograms or {},
        },
    }


class TestMonitorRendering:
    """``swgate top``'s interval maths, pure-function tested."""

    def test_render_interval_rates_and_quantiles(self):
        from repro.serve import monitor

        queue = {
            "bounds": [0.001, 0.01], "counts": [0, 0, 0],
            "count": 0, "sum": 0.0, "max": None,
        }
        queue_later = {
            "bounds": [0.001, 0.01], "counts": [90, 8, 2],
            "count": 100, "sum": 0.2, "max": 0.05,
        }
        prev = _monitor_sample(
            10.0,
            {"executor.words": 100, "serve.requests": 50,
             "executor.blocks": 10, "executor.requests": 50,
             "compile_cache.hits": 9, "compile_cache.misses": 1},
            {"executor.queue_latency_s": queue},
        )
        cur = _monitor_sample(
            12.0,
            {"executor.words": 300, "serve.requests": 150,
             "executor.blocks": 60, "executor.requests": 150,
             "executor.coalesced_requests": 50,
             "compile_cache.hits": 29, "compile_cache.misses": 1},
            {"executor.queue_latency_s": queue_later},
        )
        text = monitor.render_interval(prev, cur)
        assert "100.0 words/s" in text
        assert "50.0 requests/s" in text
        assert "25.0 blocks/s" in text
        assert "4.0 words/block" in text
        assert "50.0% of requests shared a block" in text
        assert "100.0% cache hit rate (20 lookups)" in text
        # Interval delta histogram: p50 in the first bucket (1ms),
        # p99 spills into overflow -> the observed max (50ms).
        assert "queue p50 1.00ms p99 50.00ms" in text

    def test_histogram_delta_subtracts_cumulative_counts(self):
        from repro.serve import monitor

        prev = _monitor_sample(
            0.0, {},
            {"h": {"bounds": [1.0], "counts": [5, 1], "count": 6,
                   "sum": 3.0, "max": 2.0}},
        )
        cur = _monitor_sample(
            1.0, {},
            {"h": {"bounds": [1.0], "counts": [8, 3], "count": 11,
                   "sum": 9.0, "max": 4.0}},
        )
        delta = monitor._histogram_delta(prev, cur, "h")
        assert delta["counts"] == [3, 2]
        assert delta["count"] == 5
        assert delta["sum"] == pytest.approx(6.0)

    def test_render_interval_handles_idle_daemon(self):
        from repro.serve import monitor

        prev = _monitor_sample(0.0, {})
        cur = _monitor_sample(2.0, {})
        text = monitor.render_interval(prev, cur)
        assert "no blocks this interval" in text
        assert "no requests this interval" in text

    def test_top_polls_live_daemon(self, server):
        import io

        from repro.serve import monitor

        ServeClient(server.url).run(xor_pair("watched"), BATCH)
        out = io.StringIO()
        rendered = monitor.top(
            server.url, interval=0.1, iterations=2, clear=False, out=out,
        )
        assert rendered == 2
        assert out.getvalue().count("swgate top") == 2


class TestClientTransportErrors:
    def test_connection_refused_raises_serve_error(self):
        client = ServeClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            client.healthz()

    def test_run_raises_serve_error_on_dead_daemon(self):
        client = ServeClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServeError):
            client.run(xor_pair("gone"), BATCH)


class TestWarmStartOverHttp:
    def test_first_request_hits_warm_cache(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        path = compile_circuit(xor_pair("disk"), bindings).save(
            tmp_path / "xor.ccz"
        )
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, warm=[path]
        ) as daemon:
            client = ServeClient(daemon.url)
            result = client.run(xor_pair("fresh-title"), BATCH)
            assert result.correct
            cache = client.stats()["compile_cache"]
        assert cache["warmed"] == 1
        assert cache["misses"] == 0
        assert cache["hits"] == 1


class TestConcurrentClients:
    def test_many_threads_submit_through_one_daemon(self, server):
        """Concurrent HTTP clients exercise the executor's lock: every
        request resolves correctly and the flush thread (not per-request
        forced flushes) coalesces them into shared blocks."""
        n_threads = 8
        netlist = xor_pair("flood")
        expected = netlist.evaluate_batch(BATCH)
        results = [None] * n_threads
        errors = []

        def worker(index):
            try:
                client = ServeClient(server.url)
                results[index] = client.run(xor_pair("flood"), BATCH)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        for result in results:
            assert result is not None
            assert result.outputs == expected
            assert result.correct
        stats = server.executor.stats
        assert stats["requests"] == n_threads
        assert stats["words"] == n_threads * len(BATCH)
        # One compile serves every coalesced block.
        assert server.executor.cache.misses == 1

    def test_mixed_modes_partition_into_their_own_blocks(self, server):
        client = ServeClient(server.url)
        barrier = threading.Barrier(2)
        outcomes = {}

        def run(mode):
            barrier.wait(timeout=10)
            outcomes[mode] = ServeClient(server.url).run(
                xor_pair("mix"), BATCH, mode=mode
            )

        threads = [
            threading.Thread(target=run, args=(mode,))
            for mode in ("phasor", "trace")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert outcomes["phasor"].mode == "phasor"
        assert outcomes["trace"].mode == "trace"
        expected = xor_pair("mix").evaluate_batch(BATCH)
        assert outcomes["phasor"].outputs == expected
        assert outcomes["trace"].outputs == expected
        assert server.executor.stats["blocks"] == 2
