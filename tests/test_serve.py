"""The serving daemon: HTTP round-trips pinned against in-process runs.

The conformance bar for ``repro.serve``: everything a client receives
over the wire -- output bits, expected bits, failure flags, per-level
margins, fault echoes, error classes -- must match what the same
request served through an in-process :class:`CircuitExecutor` yields,
to <= 1e-12 on margins and bit-identically on logic.  Also covers the
daemon's introspection endpoints, its error -> HTTP status mapping,
warm start over the executor, and concurrent clients exercising the
executor's submit/flush lock.
"""

import json
import math
import threading

import pytest

from repro.circuits import (
    CellFault,
    CircuitExecutor,
    GateBindings,
    compile_circuit,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.core.faults import TransducerFault
from repro.errors import NetlistError, SimulationError
from repro.serve import CircuitServer, ServeClient
from repro.waveguide.noise import NoiseModel

N_BITS = 2

PIN = 1e-12


def xor_pair(title):
    netlist = Netlist(title)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell("x", "XOR2", ("a", "b"))
    netlist.add_cell("y", "XOR2", ("x", "c"))
    netlist.mark_output("y")
    return netlist


BATCH = [
    {"a": 0, "b": 1, "c": 1},
    {"a": 1, "b": 1, "c": 0},
    {"a": 1, "b": 0, "c": 1},
]


@pytest.fixture()
def server():
    with CircuitServer(n_bits=N_BITS, max_latency=0.002) as daemon:
        yield daemon


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


def reference_run(**kwargs):
    """The same request served by a fresh in-process executor."""
    executor = CircuitExecutor(n_bits=N_BITS)
    return executor.run(**kwargs)


def assert_pinned(remote, local):
    """Remote result == in-process result (bits exact, margins <= PIN)."""
    assert remote.outputs == local.outputs
    assert remote.expected == local.expected
    assert list(remote.failed) == list(local.failed)
    assert remote.n_entries == local.n_entries
    assert remote.mode == local.mode
    assert remote.correct == local.correct
    assert len(remote.levels) == len(local.levels)
    for mine, theirs in zip(remote.levels, local.levels):
        assert mine.level == theirs.level
        assert mine.n_cells == theirs.n_cells
        if theirs.min_margin is None or math.isnan(theirs.min_margin):
            assert mine.min_margin is None or math.isnan(mine.min_margin)
        else:
            assert abs(mine.min_margin - theirs.min_margin) <= PIN


class TestRunRoundTrips:
    def test_phasor_pinned_to_in_process(self, client):
        remote = client.run(xor_pair("wire"), BATCH)
        local = reference_run(
            netlist=xor_pair("wire"), assignments_batch=BATCH
        )
        assert_pinned(remote, local)

    def test_trace_pinned_to_in_process(self, client):
        remote = client.run(xor_pair("wire"), BATCH, mode="trace")
        local = reference_run(
            netlist=xor_pair("wire"), assignments_batch=BATCH,
            mode="trace",
        )
        assert_pinned(remote, local)

    def test_faults_and_noise_pinned(self, client):
        """Seeded noise + an injected fault realise identically on both
        sides of the wire (the executor derives per-(cell, group) noise
        from the seed, so transport cannot perturb it)."""
        faults = [
            CellFault("x", TransducerFault(
                "dead-source", channel=1, input_index=0, severity=0.6,
            ))
        ]
        noise = NoiseModel(amplitude_sigma=0.03, phase_sigma=0.02, seed=11)
        remote = client.run(
            xor_pair("noisy"), BATCH, faults=faults, noise=noise,
            strict=False,
        )
        local = reference_run(
            netlist=xor_pair("noisy"), assignments_batch=BATCH,
            faults=faults, noise=noise, strict=False,
        )
        assert_pinned(remote, local)
        assert [f.cell for f in remote.faults] == ["x"]

    def test_position_noise_rides_the_fallback_path(self, client, server):
        noise = NoiseModel(position_sigma=5e-9, seed=3)
        remote = client.run(
            xor_pair("placed"), BATCH, noise=noise, strict=False
        )
        local = reference_run(
            netlist=xor_pair("placed"), assignments_batch=BATCH,
            noise=noise, strict=False,
        )
        assert_pinned(remote, local)
        assert server.executor.stats["fallbacks"] == 1

    def test_adder_round_trip(self, client):
        netlist = ripple_carry_adder(3)
        batch = [{"a0": 1, "a1": 1, "a2": 0, "b0": 1, "b1": 0, "b2": 1}]
        remote = client.run(netlist, batch)
        local = reference_run(netlist=netlist, assignments_batch=batch)
        assert_pinned(remote, local)

    def test_cells_opt_in(self, client):
        lean = client.run(xor_pair("lean"), BATCH)
        assert lean.cells == {}
        full = client.run(xor_pair("full"), BATCH, cells=True)
        assert set(full.cells) == {"x", "y"}
        local = reference_run(
            netlist=xor_pair("full"), assignments_batch=BATCH
        )
        assert full.cells["y"].bits == local.cells["y"].bits


class TestErrorMapping:
    def test_missing_input_raises_netlist_error(self, client):
        with pytest.raises(NetlistError, match="no value supplied"):
            client.run(xor_pair("m"), [{"a": 0, "b": 1}])

    def test_unknown_mode_raises_netlist_error(self, client):
        with pytest.raises(NetlistError, match="unknown execution mode"):
            client.run(xor_pair("m"), BATCH, mode="spice")

    def test_validation_errors_are_http_400(self, client):
        from repro.serve import protocol

        payload = protocol.encode_run_request(
            xor_pair("status"), [{"a": 0, "b": 1}]  # missing input c
        )
        status, body = client._request("POST", "/v1/run", payload)
        assert status == 400
        assert json.loads(body)["error"]["type"] == "NetlistError"

    def test_strict_decode_failure_is_http_422(self, client, monkeypatch):
        from repro.circuits import compiled as compiled_mod

        monkeypatch.setattr(
            compiled_mod.CompiledCircuit,
            "_first_dead",
            lambda self, packed, start, end: SimulationError(
                "decode of cell 'y' is dead"
            ),
        )
        from repro.serve import protocol

        payload = protocol.encode_run_request(xor_pair("dead"), BATCH)
        status, body = client._request("POST", "/v1/run", payload)
        assert status == 422
        assert json.loads(body)["error"]["type"] == "SimulationError"
        # And the typed client re-raises the in-process class.
        with pytest.raises(SimulationError, match="dead"):
            client.run(xor_pair("dead"), BATCH)

    def test_invalid_json_body_is_http_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.url + "/v1/run", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_unknown_route_is_http_404(self, client):
        status, _ = client._request("GET", "/nope")
        assert status == 404
        status, _ = client._request("POST", "/v2/run", {})
        assert status == 404


class TestIntrospection:
    def test_healthz(self, client, server):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert health["n_bits"] == N_BITS
        assert health["uptime_s"] >= 0
        assert health["backend"] == server.executor.bindings.backend.tag

    def test_stats_expose_executor_counters(self, client):
        client.run(xor_pair("s"), BATCH)
        stats = client.stats()
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["words"] == len(BATCH)
        assert stats["compile_cache"]["misses"] == 1
        assert "packed blocks" in stats["describe"]

    def test_metrics_text_and_json(self, client):
        client.run(xor_pair("m"), BATCH)
        text = client.metrics()
        assert "executor.requests" in text
        assert "serve.requests" in text
        snapshot = client.metrics(format="json")
        assert snapshot["counters"]["serve.requests"] >= 1
        assert snapshot["counters"]["executor.requests"] == 1

    def test_server_error_counters(self, client, server):
        with pytest.raises(NetlistError):
            client.run(xor_pair("e"), [{"a": 0}])
        assert server.obs.counter("serve.errors.400") == 1


class TestWarmStartOverHttp:
    def test_first_request_hits_warm_cache(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        path = compile_circuit(xor_pair("disk"), bindings).save(
            tmp_path / "xor.ccz"
        )
        with CircuitServer(
            n_bits=N_BITS, max_latency=0.002, warm=[path]
        ) as daemon:
            client = ServeClient(daemon.url)
            result = client.run(xor_pair("fresh-title"), BATCH)
            assert result.correct
            cache = client.stats()["compile_cache"]
        assert cache["warmed"] == 1
        assert cache["misses"] == 0
        assert cache["hits"] == 1


class TestConcurrentClients:
    def test_many_threads_submit_through_one_daemon(self, server):
        """Concurrent HTTP clients exercise the executor's lock: every
        request resolves correctly and the flush thread (not per-request
        forced flushes) coalesces them into shared blocks."""
        n_threads = 8
        netlist = xor_pair("flood")
        expected = netlist.evaluate_batch(BATCH)
        results = [None] * n_threads
        errors = []

        def worker(index):
            try:
                client = ServeClient(server.url)
                results[index] = client.run(xor_pair("flood"), BATCH)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        for result in results:
            assert result is not None
            assert result.outputs == expected
            assert result.correct
        stats = server.executor.stats
        assert stats["requests"] == n_threads
        assert stats["words"] == n_threads * len(BATCH)
        # One compile serves every coalesced block.
        assert server.executor.cache.misses == 1

    def test_mixed_modes_partition_into_their_own_blocks(self, server):
        client = ServeClient(server.url)
        barrier = threading.Barrier(2)
        outcomes = {}

        def run(mode):
            barrier.wait(timeout=10)
            outcomes[mode] = ServeClient(server.url).run(
                xor_pair("mix"), BATCH, mode=mode
            )

        threads = [
            threading.Thread(target=run, args=(mode,))
            for mode in ("phasor", "trace")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert outcomes["phasor"].mode == "phasor"
        assert outcomes["trace"].mode == "trace"
        expected = xor_pair("mix").evaluate_batch(BATCH)
        assert outcomes["phasor"].outputs == expected
        assert outcomes["trace"].outputs == expected
        assert server.executor.stats["blocks"] == 2
