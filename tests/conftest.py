"""Shared fixtures.

Session-scoped fixtures cache the expensive-to-build objects (layouts
trigger dispersion root-finding per channel) so the suite stays fast.
"""

import pytest

from repro import byte_majority_gate
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.materials import FECOB_PMA
from repro.physics import FvmswDispersion
from repro.waveguide import Waveguide


@pytest.fixture(scope="session")
def paper_waveguide():
    """The paper's 50 nm x 1 nm Fe60Co20B20 strip."""
    return Waveguide()


@pytest.fixture(scope="session")
def paper_dispersion():
    """FVMSW dispersion of the paper's film."""
    return FvmswDispersion(FECOB_PMA, 1e-9)


@pytest.fixture(scope="session")
def paper_layout():
    """The byte-gate layout with the paper's multipliers."""
    return InlineGateLayout.paper_byte_layout()


@pytest.fixture(scope="session")
def byte_gate():
    """The paper's 8-bit 3-input majority gate."""
    return byte_majority_gate()


@pytest.fixture(scope="session")
def byte_simulator(byte_gate):
    """A shared simulator for the byte gate (calibration cached)."""
    return GateSimulator(byte_gate)
