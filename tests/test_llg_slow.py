"""Slow micromagnetic validation tests (marked ``slow``).

Run with ``pytest -m slow`` (the default suite includes them unless
deselected with ``-m "not slow"``); each takes tens of seconds.
"""

import math

import numpy as np
import pytest

from repro.analysis.phase import phase_at
from repro.core.simulate import GateSimulator, build_micromagnetic_simulation
from repro.experiments import llg_validation
from repro.materials import FECOB_PMA
from repro.mm import (
    ExchangeField,
    Mesh,
    SineWaveform,
    Simulation,
    State,
    ThinFilmDemagField,
    UniaxialAnisotropyField,
)
from repro.mm.fields.applied import AppliedField
from repro.physics.dispersion import ExchangeDispersion
from repro.physics.solve import wavelength_for_frequency

pytestmark = pytest.mark.slow


class TestSpinWavePropagation:
    def test_measured_wavelength_matches_dispersion(self):
        """A 10 GHz wave in the 1-D film must show the exchange-branch
        wavelength -- the quantitative link between the LLG solver and
        the analytic layout engine."""
        frequency = 10e9
        dispersion = ExchangeDispersion(FECOB_PMA, 1e-9)
        expected_lambda = wavelength_for_frequency(dispersion, frequency)

        cell = 4e-9
        nx = 260
        mesh = Mesh(nx, 1, 1, cell, cell, cell)
        state = State.uniform(mesh, FECOB_PMA)
        # Absorber at the far end keeps reflections out of the fit region.
        x = mesh.cell_centers(0)
        total = nx * cell
        ramp = np.clip((x - (total - 200e-9)) / 200e-9, 0.0, 1.0)
        alpha = FECOB_PMA.alpha + 0.5 * ramp**2
        sim = Simulation(
            state,
            terms=[
                ExchangeField(),
                UniaxialAnisotropyField(),
                ThinFilmDemagField(),
            ],
            alpha_profile=alpha.reshape(nx, 1, 1) * np.ones(mesh.shape),
        )
        mask = mesh.region_mask(x=(20e-9, 30e-9))
        sim.add_term(
            AppliedField(mask, (1, 0, 0), SineWaveform(5e3, frequency, ramp=0.2e-9))
        )
        sim.run(1.2e-9, dt=0.1e-12)

        # Fit the spatial oscillation of mx in the steady interior.
        mx = sim.state.m[:, 0, 0, 0]
        window = slice(20, 140)
        profile = mx[window]
        spectrum = np.abs(np.fft.rfft(profile * np.hanning(len(profile))))
        k_axis = 2 * np.pi * np.fft.rfftfreq(len(profile), cell)
        k_measured = k_axis[spectrum.argmax()]
        lambda_measured = 2 * np.pi / k_measured
        assert lambda_measured == pytest.approx(expected_lambda, rel=0.12)

    def test_wave_attenuates_along_guide(self):
        frequency = 15e9
        cell = 4e-9
        nx = 200
        mesh = Mesh(nx, 1, 1, cell, cell, cell)
        state = State.uniform(mesh, FECOB_PMA.with_(alpha=0.02))
        sim = Simulation(
            state,
            terms=[
                ExchangeField(),
                UniaxialAnisotropyField(),
                ThinFilmDemagField(),
            ],
        )
        mask = mesh.region_mask(x=(12e-9, 24e-9))
        sim.add_term(
            AppliedField(mask, (1, 0, 0), SineWaveform(5e3, frequency, ramp=0.2e-9))
        )
        near = sim.add_region_probe(x=(100e-9, 110e-9))
        far = sim.add_region_probe(x=(400e-9, 410e-9))
        sim.run(1.0e-9, dt=0.1e-12)
        t = near.times()
        late = t > 0.7e-9
        near_amp = np.max(np.abs(near.component(0)[late]))
        far_amp = np.max(np.abs(far.component(0)[late]))
        assert far_amp < near_amp


class TestLlgGateValidation:
    def test_destructive_pair_cancels(self):
        """Two antiphase sources one wavelength apart leave the detector
        nearly silent -- the physical XOR mechanism."""
        gate = llg_validation.build_reduced_gate()
        simulator = GateSimulator(gate)

        silent = llg_validation.run_llg_case(gate, (0, 1, 0))
        loud = llg_validation.run_llg_case(gate, (0, 0, 0))
        # (0,1,0): one wave against two -> 1/3 of the unanimous amplitude.
        assert silent["amplitudes"][0] < 0.55 * loud["amplitudes"][0]

    def test_majority_phase_flip(self):
        gate = llg_validation.build_reduced_gate()
        zero = llg_validation.run_llg_case(gate, (0, 0, 0))
        one = llg_validation.run_llg_case(gate, (1, 1, 1))
        assert zero["decoded"] == [0]
        assert one["decoded"] == [1]
        # The two unanimous states sit a full pi apart.
        delta = abs(one["phases"][0] - zero["phases"][0])
        delta = min(delta, 2 * math.pi - delta)
        assert delta == pytest.approx(math.pi, abs=0.6)

    def test_full_cross_validation_all_combos(self):
        results = llg_validation.run()
        assert results["all_agree"], llg_validation.report(results)
        assert results["all_correct"]


class TestPulseSpectroscopy:
    def test_measured_dispersion_matches_analytic(self):
        """Broadband-pulse spectroscopy: the LLG solver's omega(k) ridge
        must follow the analytic exchange branch across the band the
        gate channels occupy."""
        import numpy as np

        from repro.mm.spectroscopy import extract_branch, measure_dispersion
        from repro.physics.dispersion import ExchangeDispersion

        spectrum = measure_dispersion(
            FECOB_PMA, length=1.2e-6, duration=1.2e-9, dt=0.1e-12
        )
        ks, fs = extract_branch(
            spectrum, k_min=2e7, k_max=2.5e8, threshold_ratio=0.03
        )
        analytic = ExchangeDispersion(FECOB_PMA, 1e-9)
        predicted = np.array([analytic.frequency(k) for k in ks])
        errors = np.abs(fs - predicted) / predicted
        assert float(np.median(errors)) < 0.15
        assert len(ks) >= 5  # a real branch, not a lone peak


class TestWidthResolvedSimulation:
    def test_2d_gate_decodes_like_1d(self):
        """Resolving the 50 nm width with 5 transverse cells must not
        change the decoded majority (the fundamental width mode is
        uniform under free-spin boundaries)."""
        gate = llg_validation.build_reduced_gate()
        bits = (1, 1, 0)
        words = [[b] * gate.n_bits for b in bits]
        reference = GateSimulator(gate)
        t_start = reference.settle_time()
        duration = t_start + 10.0 / min(gate.layout.plan.frequencies)

        decoded = {}
        for resolve in (False, True):
            sim, probes = build_micromagnetic_simulation(
                gate,
                words,
                cell_size=4e-9,
                field_amplitude=8e3,
                resolve_width=resolve,
                cell_size_y=10e-9,
            )
            sim.run(duration, dt=0.1e-12)
            from repro.core.readout import decode_channel

            reference_phase, _ = reference.calibration()[0]
            probe = probes[0]
            decode = decode_channel(
                probe.times(),
                probe.component(0),
                gate.layout.plan.frequencies[0],
                reference_phase=reference_phase,
                t_start=t_start,
            )
            decoded[resolve] = decode.bit
        assert decoded[False] == decoded[True] == 1  # MAJ(1,1,0)


class TestLinearity:
    def test_response_linear_in_drive(self):
        """Doubling the excitation field doubles Mx/Ms (small-signal
        regime) -- the premise of the linear waveguide model."""
        gate = llg_validation.build_reduced_gate()
        words = [[0], [0], [0]]

        def peak_response(field_amplitude):
            sim, probes = build_micromagnetic_simulation(
                gate, words, field_amplitude=field_amplitude
            )
            sim.run(0.8e-9, dt=0.1e-12)
            return np.max(np.abs(probes[0].component(0)))

        low = peak_response(2e3)
        high = peak_response(4e3)
        assert high == pytest.approx(2 * low, rel=0.05)
