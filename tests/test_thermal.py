"""Tests for repro.mm.thermal (stochastic LLG)."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.materials import PERMALLOY
from repro.mm import Mesh, State, ZeemanField
from repro.mm.thermal import (
    ThermalLangevinRun,
    equilibrium_cone_angle,
    thermal_field_sigma,
    thermal_phase_noise_sigma,
)


def _macrospin(alpha=0.1, edge=5e-9):
    mesh = Mesh(1, 1, 1, edge, edge, edge)
    material = PERMALLOY.with_(alpha=alpha)
    return State.uniform(mesh, material)


class TestThermalFieldSigma:
    def test_zero_temperature_is_zero(self):
        assert thermal_field_sigma(PERMALLOY, 1e-25, 1e-13, 0.0) == 0.0

    def test_scaling_laws(self):
        base = thermal_field_sigma(PERMALLOY, 1e-25, 1e-13, 300.0)
        # sigma ~ sqrt(T).
        hot = thermal_field_sigma(PERMALLOY, 1e-25, 1e-13, 1200.0)
        assert hot == pytest.approx(2 * base, rel=1e-9)
        # sigma ~ 1/sqrt(V): bigger cells fluctuate less.
        big = thermal_field_sigma(PERMALLOY, 4e-25, 1e-13, 300.0)
        assert big == pytest.approx(base / 2, rel=1e-9)
        # sigma ~ 1/sqrt(dt).
        fine = thermal_field_sigma(PERMALLOY, 1e-25, 0.25e-13, 300.0)
        assert fine == pytest.approx(2 * base, rel=1e-9)

    def test_scales_with_alpha(self):
        lossy = PERMALLOY.with_(alpha=4 * PERMALLOY.alpha)
        assert thermal_field_sigma(lossy, 1e-25, 1e-13, 300.0) == pytest.approx(
            2 * thermal_field_sigma(PERMALLOY, 1e-25, 1e-13, 300.0), rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            thermal_field_sigma(PERMALLOY, 1e-25, 1e-13, -1.0)
        with pytest.raises(SimulationError):
            thermal_field_sigma(PERMALLOY, 0.0, 1e-13, 300.0)
        with pytest.raises(SimulationError):
            thermal_field_sigma(PERMALLOY, 1e-25, 0.0, 300.0)


@pytest.mark.slow
class TestLangevinRun:
    """Stochastic LLG integration runs: the long half of this module.

    Marked ``slow`` with the LLG cross-validation suite; the quick lane
    (``-m "not slow"``) keeps the analytic sigma/equilibrium checks.
    """
    def test_zero_temperature_matches_deterministic_fixed_point(self):
        state = _macrospin(alpha=0.5)
        run = ThermalLangevinRun(
            state, [ZeemanField((0, 0, 5e5))], temperature=0.0
        )
        run.run(0.5e-9, dt=1e-13)
        # Aligned with the field, no noise: stays aligned.
        assert state.m[0, 0, 0, 2] == pytest.approx(1.0, abs=1e-9)

    def test_norm_preserved_exactly(self):
        state = _macrospin()
        run = ThermalLangevinRun(
            state, [ZeemanField((0, 0, 2e5))], temperature=300.0, seed=1
        )
        run.run(0.2e-9, dt=1e-13)
        assert state.norm_error() < 1e-12

    def test_seed_reproducibility(self):
        results = []
        for _ in range(2):
            state = _macrospin()
            run = ThermalLangevinRun(
                state, [ZeemanField((0, 0, 2e5))], temperature=300.0, seed=9
            )
            run.run(0.1e-9, dt=1e-13)
            results.append(state.m.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_finite_temperature_fluctuates(self):
        state = _macrospin()
        run = ThermalLangevinRun(
            state, [ZeemanField((0, 0, 5e5))], temperature=300.0, seed=2
        )
        run.run(0.2e-9, dt=1e-13)
        transverse = math.hypot(state.m[0, 0, 0, 0], state.m[0, 0, 0, 1])
        assert transverse > 1e-4

    def test_thermalised_cone_angle_magnitude(self):
        # Long run: the time-averaged transverse spread should match the
        # equipartition estimate within a factor ~2.
        state = _macrospin(alpha=0.2, edge=4e-9)
        h = 8e5
        run = ThermalLangevinRun(
            state, [ZeemanField((0, 0, h))], temperature=300.0, seed=3
        )
        samples = []

        def collect(t, s):
            samples.append(math.hypot(s.m[0, 0, 0, 0], s.m[0, 0, 0, 1]))

        run.run(2e-9, dt=1e-13, callback=collect)
        measured = float(np.sqrt(np.mean(np.square(samples[2000:]))))
        expected = equilibrium_cone_angle(
            state.material, h, state.mesh.cell_volume, 300.0
        )
        assert measured == pytest.approx(expected, rel=0.6)

    def test_hotter_is_noisier(self):
        def rms_tilt(temperature):
            state = _macrospin(alpha=0.2)
            run = ThermalLangevinRun(
                state,
                [ZeemanField((0, 0, 5e5))],
                temperature=temperature,
                seed=4,
            )
            samples = []
            run.run(
                0.5e-9,
                dt=1e-13,
                callback=lambda t, s: samples.append(
                    math.hypot(s.m[0, 0, 0, 0], s.m[0, 0, 0, 1])
                ),
            )
            return float(np.sqrt(np.mean(np.square(samples[1000:]))))

        assert rms_tilt(1200.0) > rms_tilt(75.0)

    def test_validation(self):
        state = _macrospin()
        with pytest.raises(SimulationError):
            ThermalLangevinRun(state, [], temperature=300.0)
        with pytest.raises(SimulationError):
            ThermalLangevinRun(
                state, [ZeemanField((0, 0, 1e5))], temperature=-1.0
            )
        run = ThermalLangevinRun(
            state, [ZeemanField((0, 0, 1e5))], temperature=0.0
        )
        with pytest.raises(SimulationError):
            run.run(-1e-9, dt=1e-13)
        with pytest.raises(SimulationError):
            run.run(1e-9, dt=0.0)


class TestEquilibriumEstimates:
    def test_cone_angle_zero_at_zero_t(self):
        assert equilibrium_cone_angle(PERMALLOY, 1e5, 1e-24, 0.0) == 0.0

    def test_cone_angle_scalings(self):
        base = equilibrium_cone_angle(PERMALLOY, 1e5, 1e-24, 300.0)
        assert equilibrium_cone_angle(
            PERMALLOY, 4e5, 1e-24, 300.0
        ) == pytest.approx(base / 2)
        assert equilibrium_cone_angle(
            PERMALLOY, 1e5, 4e-24, 300.0
        ) == pytest.approx(base / 2)

    def test_phase_noise_alias(self):
        assert thermal_phase_noise_sigma(
            PERMALLOY, 1e5, 1e-24, 300.0
        ) == equilibrium_cone_angle(PERMALLOY, 1e5, 1e-24, 300.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            equilibrium_cone_angle(PERMALLOY, 0.0, 1e-24, 300.0)
        with pytest.raises(SimulationError):
            equilibrium_cone_angle(PERMALLOY, 1e5, 1e-24, -5.0)

    def test_paper_transducer_jitter_below_threshold(self):
        # The 10x50x1 nm ME cell at 300 K must jitter well below the
        # pi/2 decode threshold, or the whole scheme is thermally dead.
        from repro.materials import FECOB_PMA

        volume = 10e-9 * 50e-9 * 1e-9
        h_int = FECOB_PMA.internal_field_perpendicular()
        sigma = thermal_phase_noise_sigma(FECOB_PMA, h_int, volume, 300.0)
        assert sigma < 0.5  # rad, comfortably under pi/2
