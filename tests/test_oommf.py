"""Tests for repro.oommf (MIF export, OVF read/write)."""

import io

import numpy as np
import pytest

from repro.errors import OommfFormatError
from repro.materials import FECOB_PMA
from repro.mm import Mesh, State
from repro.oommf import OvfField, gate_to_mif, read_ovf, write_ovf
from repro.oommf.mif import MifDocument


@pytest.fixture(scope="module")
def mif_text(byte_gate):
    words = [[1, 0] * 4, [0, 1] * 4, [1, 1, 0, 0] * 2]
    return gate_to_mif(byte_gate, words)


class TestMifDocument:
    def test_render_block_structure(self):
        doc = MifDocument(title="test")
        doc.add_block("Oxs_BoxAtlas", "atlas", "xrange {0 1e-6}")
        text = doc.render()
        assert "# MIF 2.1" in text
        assert "Specify Oxs_BoxAtlas:atlas {" in text
        assert "xrange {0 1e-6}" in text

    def test_empty_spec_type_rejected(self):
        with pytest.raises(OommfFormatError):
            MifDocument().add_block("", "x", "")

    def test_destinations_and_schedule(self):
        doc = MifDocument()
        doc.add_destination("archive", "mmArchive")
        doc.add_schedule("Oxs_TimeDriver::Magnetization", "archive", "Stage 1")
        text = doc.render()
        assert "Destination archive mmArchive" in text
        assert "Schedule Oxs_TimeDriver::Magnetization archive Stage 1" in text


class TestGateToMif:
    def test_contains_required_blocks(self, mif_text):
        for block in (
            "Oxs_BoxAtlas",
            "Oxs_RectangularMesh",
            "Oxs_UniformExchange",
            "Oxs_UniaxialAnisotropy",
            "Oxs_Demag",
            "Oxs_ScriptUZeeman",
            "Oxs_RungeKuttaEvolve",
            "Oxs_TimeDriver",
        ):
            assert block in mif_text, f"missing {block}"

    def test_material_parameters_embedded(self, mif_text):
        assert f"{FECOB_PMA.aex:.6e}" in mif_text
        assert f"{FECOB_PMA.ku:.6e}" in mif_text
        assert f"{FECOB_PMA.ms:.6e}" in mif_text
        assert f"alpha {FECOB_PMA.alpha:g}" in mif_text

    def test_balanced_braces(self, mif_text):
        assert mif_text.count("{") == mif_text.count("}")

    def test_one_excitation_window_per_source(self, byte_gate, mif_text):
        # 24 sources -> 24 "if { $x >= ... }" windows in the Tcl proc.
        assert mif_text.count("if { $x >=") == byte_gate.layout.n_sources

    def test_proc_defined_before_use(self, mif_text):
        assert mif_text.index("proc Excitation") < mif_text.index(
            "script Excitation"
        )

    def test_invalid_cell_size(self, byte_gate):
        with pytest.raises(OommfFormatError):
            gate_to_mif(byte_gate, [[0] * 8] * 3, cell_size=0.0)


class TestOvfRoundtrip:
    def _field(self, nx=4, ny=3, nz=2, seed=0):
        rng = np.random.default_rng(seed)
        return OvfField(
            data=rng.normal(size=(nx, ny, nz, 3)),
            xstepsize=2e-9,
            ystepsize=3e-9,
            zstepsize=1e-9,
            title="test field",
        )

    @pytest.mark.parametrize("representation", ["text", "binary4", "binary8"])
    def test_roundtrip(self, representation):
        field = self._field()
        buffer = io.BytesIO()
        write_ovf(field, buffer, representation=representation)
        buffer.seek(0)
        loaded = read_ovf(buffer)
        rtol = 1e-5 if representation == "binary4" else 1e-12
        np.testing.assert_allclose(loaded.data, field.data, rtol=rtol)
        assert loaded.shape == field.shape
        assert loaded.xstepsize == pytest.approx(field.xstepsize)

    def test_x_fastest_ordering(self):
        # OVF orders x fastest: the second text row is cell (1, 0, 0).
        field = self._field(nx=2, ny=2, nz=1)
        buffer = io.BytesIO()
        write_ovf(field, buffer, representation="text")
        text = buffer.getvalue().decode("ascii")
        data_lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        second_row = np.array(data_lines[1].split(), dtype=float)
        np.testing.assert_allclose(second_row, field.data[1, 0, 0])

    def test_from_state_scales_by_ms(self):
        mesh = Mesh(2, 2, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        field = OvfField.from_state(state)
        assert field.data[0, 0, 0, 2] == pytest.approx(FECOB_PMA.ms)
        unit = OvfField.from_state(state, scale_to_ms=False)
        assert unit.data[0, 0, 0, 2] == pytest.approx(1.0)

    def test_invalid_representation(self):
        with pytest.raises(OommfFormatError):
            write_ovf(self._field(), io.BytesIO(), representation="binary16")

    def test_missing_data_section(self):
        with pytest.raises(OommfFormatError):
            read_ovf(io.BytesIO(b"# OOMMF OVF 2.0\n# no data here\n"))

    def test_missing_header_key(self):
        payload = (
            b"# xnodes: 1\n# ynodes: 1\n# Begin: Data Text\n0 0 0\n"
            b"# End: Data Text\n"
        )
        with pytest.raises(OommfFormatError, match="znodes"):
            read_ovf(io.BytesIO(payload))

    def test_wrong_value_count(self):
        payload = (
            b"# xnodes: 2\n# ynodes: 1\n# znodes: 1\n"
            b"# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n"
            b"# Begin: Data Text\n0 0 0\n# End: Data Text\n"
        )
        with pytest.raises(OommfFormatError, match="values"):
            read_ovf(io.BytesIO(payload))

    def test_binary_check_value_enforced(self):
        field = self._field(nx=1, ny=1, nz=1)
        buffer = io.BytesIO()
        write_ovf(field, buffer, representation="binary4")
        raw = bytearray(buffer.getvalue())
        marker = raw.find(b"# Begin: Data Binary 4\n") + len(
            b"# Begin: Data Binary 4\n"
        )
        raw[marker : marker + 4] = b"\x00\x00\x00\x00"
        with pytest.raises(OommfFormatError, match="check value"):
            read_ovf(io.BytesIO(bytes(raw)))

    def test_file_path_roundtrip(self, tmp_path):
        field = self._field()
        path = tmp_path / "state.ovf"
        write_ovf(field, str(path))
        loaded = read_ovf(str(path))
        np.testing.assert_allclose(loaded.data, field.data)
