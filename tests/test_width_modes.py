"""Tests for repro.physics.width_modes."""

import math

import numpy as np
import pytest

from repro.materials import FECOB_PMA
from repro.physics.dispersion import FvmswDispersion
from repro.physics.width_modes import (
    band_edge_frequency,
    crosstalk_isolation_db,
    fmr_vs_width,
    longitudinal_wavenumber,
    width_mode_wavenumber,
)


@pytest.fixture(scope="module")
def dispersion():
    return FvmswDispersion(FECOB_PMA, 1e-9)


class TestWavenumber:
    def test_fundamental(self):
        assert width_mode_wavenumber(50e-9) == pytest.approx(math.pi / 50e-9)

    def test_higher_modes_scale(self):
        k1 = width_mode_wavenumber(50e-9, n=1)
        k3 = width_mode_wavenumber(50e-9, n=3)
        assert k3 == pytest.approx(3 * k1)

    def test_pinning_reduces_k(self):
        assert width_mode_wavenumber(50e-9, pinning=0.5) == pytest.approx(
            0.5 * width_mode_wavenumber(50e-9)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            width_mode_wavenumber(0.0)
        with pytest.raises(ValueError):
            width_mode_wavenumber(50e-9, n=0)
        with pytest.raises(ValueError):
            width_mode_wavenumber(50e-9, pinning=0.0)


class TestBandEdge:
    def test_decreases_with_width(self, dispersion):
        # The paper's Section V observation: wider guide -> lower FMR.
        edges = fmr_vs_width(dispersion, [w * 1e-9 for w in (50, 100, 200, 500)])
        assert np.all(np.diff(edges) < 0)

    def test_wide_limit_is_film_fmr(self, dispersion):
        film_edge = dispersion.frequency(0.0)
        wide = band_edge_frequency(dispersion, 1e-4)
        assert wide == pytest.approx(film_edge, rel=1e-3)

    def test_higher_mode_above_fundamental(self, dispersion):
        f1 = band_edge_frequency(dispersion, 50e-9, n=1)
        f2 = band_edge_frequency(dispersion, 50e-9, n=2)
        assert f2 > f1

    def test_50nm_edge_below_10ghz(self, dispersion):
        # The paper's plan starts at 10 GHz; the 50 nm guide's edge must
        # be below it or the first channel would not propagate.
        assert band_edge_frequency(dispersion, 50e-9) < 10e9


class TestLongitudinal:
    def test_pythagorean_composition(self, dispersion):
        from repro.physics.solve import wavenumber_for_frequency

        width = 50e-9
        f = 20e9
        k_x = longitudinal_wavenumber(dispersion, f, width)
        k_y = width_mode_wavenumber(width)
        k_total = wavenumber_for_frequency(dispersion, f)
        assert math.hypot(k_x, k_y) == pytest.approx(k_total, rel=1e-9)

    def test_below_band_edge_raises(self, dispersion):
        edge = band_edge_frequency(dispersion, 50e-9)
        with pytest.raises(ValueError):
            longitudinal_wavenumber(dispersion, 0.9 * edge, 50e-9)


class TestCrosstalk:
    def test_isolation_positive_and_finite_in_band(self, dispersion):
        isolation = crosstalk_isolation_db(dispersion, 100e-9, 10e9)
        assert isolation > 0
        assert math.isfinite(isolation)

    def test_below_fundamental_edge_infinite(self, dispersion):
        edge = band_edge_frequency(dispersion, 50e-9)
        assert math.isinf(
            crosstalk_isolation_db(dispersion, 50e-9, 0.5 * edge)
        )

    def test_isolation_decreases_with_width(self, dispersion):
        # Wider guides squeeze the mode spacing -> less isolation.
        narrow = crosstalk_isolation_db(dispersion, 100e-9, 10e9)
        wide = crosstalk_isolation_db(dispersion, 400e-9, 10e9)
        assert narrow > wide

    def test_paper_width_range_remains_isolated(self, dispersion):
        # Up to 500 nm the paper saw no crosstalk; our model should keep
        # double-digit dB isolation there.
        assert crosstalk_isolation_db(dispersion, 500e-9, 10e9) > 10.0
