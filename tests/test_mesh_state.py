"""Tests for repro.mm.mesh and repro.mm.state."""

import numpy as np
import pytest

from repro.errors import MeshError, SimulationError
from repro.materials import FECOB_PMA
from repro.mm import Mesh, State


class TestMesh:
    def test_basic_properties(self):
        mesh = Mesh(10, 5, 2, 1e-9, 2e-9, 3e-9)
        assert mesh.shape == (10, 5, 2)
        assert mesh.n_cells == 100
        assert mesh.cell_volume == pytest.approx(6e-27)
        assert mesh.volume == pytest.approx(6e-25)
        assert mesh.extent == pytest.approx((10e-9, 10e-9, 6e-9))

    def test_invalid_counts(self):
        with pytest.raises(MeshError):
            Mesh(0, 1, 1, 1e-9, 1e-9, 1e-9)
        with pytest.raises(MeshError):
            Mesh(1.5, 1, 1, 1e-9, 1e-9, 1e-9)

    def test_invalid_sizes(self):
        with pytest.raises(MeshError):
            Mesh(1, 1, 1, 0.0, 1e-9, 1e-9)

    def test_cell_centers(self):
        mesh = Mesh(4, 1, 1, 2e-9, 1e-9, 1e-9)
        np.testing.assert_allclose(
            mesh.cell_centers(0), [1e-9, 3e-9, 5e-9, 7e-9]
        )

    def test_cell_centers_with_origin(self):
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9, origin=(10e-9, 0, 0))
        np.testing.assert_allclose(mesh.cell_centers(0), [10.5e-9, 11.5e-9])

    def test_index_of(self):
        mesh = Mesh(10, 10, 1, 1e-9, 1e-9, 1e-9)
        assert mesh.index_of((0.5e-9, 9.5e-9, 0.5e-9)) == (0, 9, 0)

    def test_index_of_outside_raises(self):
        mesh = Mesh(10, 1, 1, 1e-9, 1e-9, 1e-9)
        with pytest.raises(MeshError):
            mesh.index_of((11e-9, 0.5e-9, 0.5e-9))

    def test_region_mask_counts(self):
        mesh = Mesh(10, 1, 1, 1e-9, 1e-9, 1e-9)
        assert mesh.region_mask(x=(0, 3e-9)).sum() == 3
        assert mesh.region_mask().sum() == 10

    def test_region_mask_2d(self):
        mesh = Mesh(4, 4, 1, 1e-9, 1e-9, 1e-9)
        mask = mesh.region_mask(x=(0, 2e-9), y=(0, 2e-9))
        assert mask.sum() == 4

    def test_region_mask_empty_interval_raises(self):
        mesh = Mesh(4, 1, 1, 1e-9, 1e-9, 1e-9)
        with pytest.raises(MeshError):
            mesh.region_mask(x=(2e-9, 1e-9))

    def test_coordinate_arrays_shapes(self):
        mesh = Mesh(3, 4, 5, 1e-9, 1e-9, 1e-9)
        x, y, z = mesh.coordinate_arrays()
        assert x.shape == y.shape == z.shape == (3, 4, 5)
        assert x[0, 0, 0] == pytest.approx(0.5e-9)
        assert z[0, 0, 4] == pytest.approx(4.5e-9)

    def test_zeros_vector_field(self):
        mesh = Mesh(2, 2, 2, 1e-9, 1e-9, 1e-9)
        field = mesh.zeros_vector_field()
        assert field.shape == (2, 2, 2, 3)
        assert not field.any()

    def test_describe(self):
        assert "10x5x2" in Mesh(10, 5, 2, 1e-9, 1e-9, 1e-9).describe()


class TestState:
    def setup_method(self):
        self.mesh = Mesh(4, 2, 1, 1e-9, 1e-9, 1e-9)

    def test_default_points_up(self):
        state = State(self.mesh, FECOB_PMA)
        np.testing.assert_allclose(state.m[..., 2], 1.0)

    def test_uniform_normalises(self):
        state = State.uniform(self.mesh, FECOB_PMA, direction=(0, 0, 5))
        np.testing.assert_allclose(state.m[..., 2], 1.0)

    def test_uniform_zero_direction_raises(self):
        with pytest.raises(SimulationError):
            State.uniform(self.mesh, FECOB_PMA, direction=(0, 0, 0))

    def test_wrong_shape_raises(self):
        with pytest.raises(SimulationError):
            State(self.mesh, FECOB_PMA, m=np.zeros((2, 2, 1, 3)))

    def test_random_is_unit_norm(self):
        state = State.random(self.mesh, FECOB_PMA, seed=1)
        norms = np.linalg.norm(state.m, axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_random_seed_reproducible(self):
        a = State.random(self.mesh, FECOB_PMA, seed=7)
        b = State.random(self.mesh, FECOB_PMA, seed=7)
        np.testing.assert_array_equal(a.m, b.m)

    def test_normalize_restores_unit_length(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        state.m *= 1.1
        assert state.norm_error() == pytest.approx(0.1)
        state.normalize()
        assert state.norm_error() < 1e-14

    def test_normalize_zero_vector_raises(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        state.m[0, 0, 0] = 0.0
        with pytest.raises(SimulationError):
            state.normalize()

    def test_average_full(self):
        state = State.uniform(self.mesh, FECOB_PMA, direction=(1, 0, 0))
        np.testing.assert_allclose(state.average(), [1.0, 0.0, 0.0])

    def test_average_masked(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        state.m[0, :, :] = [1.0, 0.0, 0.0]
        mask = np.zeros(self.mesh.shape, dtype=bool)
        mask[0] = True
        np.testing.assert_allclose(state.average(mask), [1.0, 0.0, 0.0])

    def test_average_empty_mask_raises(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        with pytest.raises(SimulationError):
            state.average(np.zeros(self.mesh.shape, dtype=bool))

    def test_copy_is_independent(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        clone = state.copy()
        clone.m[...] = 0.5
        assert state.m[0, 0, 0, 2] == 1.0

    def test_magnetisation_scales_by_ms(self):
        state = State.uniform(self.mesh, FECOB_PMA)
        np.testing.assert_allclose(
            state.magnetisation()[..., 2], FECOB_PMA.ms
        )
