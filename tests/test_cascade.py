"""Tests for repro.core.cascade (multi-stage gate pipelines)."""

from itertools import product

import pytest

from repro.errors import EncodingError
from repro.core.cascade import (
    GateCascade,
    direct_coupling_margin,
    majority_of_majorities,
)
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.units import GHZ
from repro.waveguide import Waveguide


def _maj_gate(n_bits=2):
    plan = FrequencyPlan.uniform(n_bits, 10 * GHZ, 10 * GHZ)
    layout = InlineGateLayout(Waveguide(), plan, n_inputs=3)
    return DataParallelGate(layout)


class TestCascadeConstruction:
    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            GateCascade([], [])

    def test_mixed_widths_rejected(self):
        with pytest.raises(EncodingError):
            GateCascade([_maj_gate(2), _maj_gate(4)], [["primary:0"] * 3])

    def test_wiring_length_mismatch(self):
        with pytest.raises(EncodingError):
            GateCascade([_maj_gate(), _maj_gate()], [])

    def test_bad_selector_syntax(self):
        with pytest.raises(EncodingError):
            GateCascade(
                [_maj_gate(), _maj_gate()],
                [["primary:0", "primary:1", "banana"]],
            )

    def test_forward_reference_rejected(self):
        with pytest.raises(EncodingError):
            GateCascade(
                [_maj_gate(), _maj_gate()],
                [["stage:1", "primary:0", "primary:1"]],
            )

    def test_primary_input_count(self):
        cascade = GateCascade(
            [_maj_gate(), _maj_gate()],
            [["stage:0", "primary:3", "primary:4"]],
        )
        assert cascade.n_primary_inputs() == 5


class TestCascadeEvaluation:
    def test_two_stage_maj_chain(self):
        # stage1 = MAJ(w0, w1, w2); final = MAJ(stage1, w3, w4).
        cascade = GateCascade(
            [_maj_gate(), _maj_gate()],
            [["stage:0", "primary:3", "primary:4"]],
        )
        for bits in product((0, 1), repeat=5):
            words = [[b, 1 - b] for b in bits]
            final, results = cascade.run(words)
            assert final == cascade.expected(words)
            assert len(results) == 2
            assert all(r.min_margin > 0 for r in results)

    def test_missing_primary_words(self):
        cascade = GateCascade(
            [_maj_gate(), _maj_gate()],
            [["stage:0", "primary:3", "primary:4"]],
        )
        with pytest.raises(EncodingError):
            cascade.run([[0, 0]] * 3)

    def test_majority_of_majorities_full_truth(self):
        cascade = majority_of_majorities(_maj_gate, n_bits=2)
        assert cascade.n_primary_inputs() == 9
        # Sample the 2^9 space (81 random + corners).
        import random

        rng = random.Random(0)
        patterns = [tuple(rng.randint(0, 1) for _ in range(9)) for _ in range(40)]
        patterns += [(0,) * 9, (1,) * 9]
        for bits in patterns:
            words = [[b, b] for b in bits]
            final, _ = cascade.run(words)
            # Golden: MAJ(MAJ(b0..b2), MAJ(b3..b5), MAJ(b6..b8)) per channel.
            maj = lambda triple: int(sum(triple) >= 2)
            golden = maj(
                (
                    maj(bits[0:3]),
                    maj(bits[3:6]),
                    maj(bits[6:9]),
                )
            )
            assert final == [golden, golden]

    def test_majority_of_majorities_validates_factory(self):
        with pytest.raises(EncodingError):
            majority_of_majorities(lambda: _maj_gate(4), n_bits=2)


class TestDirectCoupling:
    def test_single_stage_healthy(self):
        assert direct_coupling_margin(3, stages=1) > 0

    def test_two_stages_fail_without_regeneration(self):
        # The quantitative argument for regeneration between stages.
        assert direct_coupling_margin(3, stages=2) < 0

    def test_wider_fanin_also_fails(self):
        assert direct_coupling_margin(5, stages=2) < 0

    def test_validation(self):
        with pytest.raises(EncodingError):
            direct_coupling_margin(4)
        with pytest.raises(EncodingError):
            direct_coupling_margin(3, stages=0)
