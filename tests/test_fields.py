"""Tests for the effective-field terms (exchange, anisotropy, Zeeman, applied)."""

import math

import numpy as np
import pytest

from repro.constants import MU0
from repro.errors import FieldError
from repro.materials import FECOB_PMA, PERMALLOY
from repro.mm import (
    AppliedField,
    ExchangeField,
    Mesh,
    SineWaveform,
    State,
    UniaxialAnisotropyField,
    ZeemanField,
)


class TestExchange:
    def test_uniform_state_gives_zero_field(self):
        mesh = Mesh(8, 4, 1, 2e-9, 2e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA, direction=(0.3, 0.4, 0.5))
        state.normalize()
        h = ExchangeField().field(state)
        np.testing.assert_allclose(h, 0.0, atol=1e-6)

    def test_plane_wave_eigenmode(self):
        # laplacian(sin(kx)) = -k^2 sin(kx): the transverse field must be
        # -lambda-prefactor * k^2 * m_transverse in the bulk.
        n = 64
        dx = 2e-9
        mesh = Mesh(n, 1, 1, dx, dx, dx)
        k = 2 * math.pi / (16 * dx)  # 8 cells per half-wave, well resolved
        x = mesh.cell_centers(0)
        eps = 1e-3
        m = np.zeros(mesh.shape + (3,))
        m[..., 0] = eps * np.sin(k * x).reshape(n, 1, 1)
        m[..., 2] = np.sqrt(1 - m[..., 0] ** 2)
        state = State(mesh, FECOB_PMA, m)
        h = ExchangeField().field(state)
        prefactor = 2 * FECOB_PMA.aex / (MU0 * FECOB_PMA.ms)
        # Effective k of the discrete Laplacian.
        k_eff_sq = (2 - 2 * math.cos(k * dx)) / dx**2
        interior = slice(8, n - 8)
        expected = -prefactor * k_eff_sq * m[interior, 0, 0, 0]
        np.testing.assert_allclose(
            h[interior, 0, 0, 0], expected, rtol=1e-2, atol=1e-12
        )

    def test_energy_zero_for_uniform(self):
        mesh = Mesh(6, 6, 1, 2e-9, 2e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        assert ExchangeField().energy(state) == pytest.approx(0.0, abs=1e-30)

    def test_energy_positive_for_twisted(self):
        mesh = Mesh(16, 1, 1, 2e-9, 2e-9, 2e-9)
        x = np.arange(16)
        m = np.zeros(mesh.shape + (3,))
        angle = x * 0.2
        m[..., 0] = np.cos(angle).reshape(-1, 1, 1)
        m[..., 1] = np.sin(angle).reshape(-1, 1, 1)
        state = State(mesh, FECOB_PMA, m)
        assert ExchangeField().energy(state) > 0

    def test_override_aex(self):
        mesh = Mesh(8, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.random(mesh, FECOB_PMA, seed=3)
        h_default = ExchangeField().field(state)
        h_double = ExchangeField(aex=2 * FECOB_PMA.aex).field(state)
        np.testing.assert_allclose(h_double, 2 * h_default)

    def test_max_stable_dt_scales_with_cell(self):
        mesh_fine = Mesh(8, 1, 1, 1e-9, 1e-9, 1e-9)
        mesh_coarse = Mesh(8, 1, 1, 4e-9, 4e-9, 4e-9)
        term = ExchangeField()
        dt_fine = term.max_stable_dt(State.uniform(mesh_fine, FECOB_PMA))
        dt_coarse = term.max_stable_dt(State.uniform(mesh_coarse, FECOB_PMA))
        assert dt_coarse == pytest.approx(16 * dt_fine, rel=1e-6)

    def test_max_stable_dt_infinite_for_macrospin(self):
        mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
        term = ExchangeField()
        assert term.max_stable_dt(State.uniform(mesh, FECOB_PMA)) == math.inf


class TestAnisotropy:
    def test_field_along_easy_axis(self):
        mesh = Mesh(2, 2, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)  # m || z = easy axis
        h = UniaxialAnisotropyField().field(state)
        expected = FECOB_PMA.anisotropy_field
        np.testing.assert_allclose(h[..., 2], expected, rtol=1e-12)
        np.testing.assert_allclose(h[..., 0], 0.0)

    def test_field_vanishes_perpendicular(self):
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA, direction=(1, 0, 0))
        h = UniaxialAnisotropyField().field(state)
        np.testing.assert_allclose(h, 0.0, atol=1e-9)

    def test_energy_zero_aligned_max_perpendicular(self):
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9)
        aligned = State.uniform(mesh, FECOB_PMA)
        perpendicular = State.uniform(mesh, FECOB_PMA, direction=(1, 0, 0))
        term = UniaxialAnisotropyField()
        assert term.energy(aligned) == pytest.approx(0.0, abs=1e-30)
        expected = FECOB_PMA.ku * mesh.volume
        assert term.energy(perpendicular) == pytest.approx(expected)

    def test_custom_axis(self):
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(1, 0, 0))
        term = UniaxialAnisotropyField(ku=1e4, axis=(1, 0, 0))
        h = term.field(state)
        assert h[0, 0, 0, 0] == pytest.approx(2 * 1e4 / (MU0 * PERMALLOY.ms))

    def test_zero_axis_rejected(self):
        with pytest.raises(FieldError):
            UniaxialAnisotropyField(axis=(0, 0, 0))


class TestZeeman:
    def test_uniform_field_everywhere(self):
        mesh = Mesh(3, 3, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY)
        h = ZeemanField((1e4, 0, 2e4)).field(state)
        np.testing.assert_allclose(h[..., 0], 1e4)
        np.testing.assert_allclose(h[..., 2], 2e4)

    def test_energy_linear_no_half(self):
        # E = -mu0*Ms*(m.H)*V exactly (no bilinear half factor).
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY)
        h = 5e4
        term = ZeemanField((0, 0, h))
        expected = -MU0 * PERMALLOY.ms * h * mesh.volume
        assert term.energy(state) == pytest.approx(expected)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ZeemanField((1.0, 2.0))


class TestApplied:
    def setup_method(self):
        self.mesh = Mesh(10, 1, 1, 1e-9, 1e-9, 1e-9)
        self.state = State.uniform(self.mesh, FECOB_PMA)
        self.mask = self.mesh.region_mask(x=(0, 3e-9))

    def test_field_localised_to_mask(self):
        waveform = SineWaveform(1e3, 10e9, phase=math.pi / 2)  # cos at t=0
        term = AppliedField(self.mask, (1, 0, 0), waveform)
        h = term.field(self.state, t=0.0)
        assert h[0, 0, 0, 0] == pytest.approx(1e3)
        assert h[5, 0, 0, 0] == 0.0

    def test_field_time_dependence(self):
        f = 10e9
        waveform = SineWaveform(1e3, f)
        term = AppliedField(self.mask, (1, 0, 0), waveform)
        quarter = 0.25 / f
        assert term.field(self.state, t=0.0)[0, 0, 0, 0] == pytest.approx(0.0)
        assert term.field(self.state, t=quarter)[0, 0, 0, 0] == pytest.approx(
            1e3, rel=1e-9
        )

    def test_direction_normalised(self):
        waveform = SineWaveform(1e3, 10e9, phase=math.pi / 2)
        term = AppliedField(self.mask, (2, 0, 0), waveform)
        assert term.field(self.state, t=0.0)[0, 0, 0, 0] == pytest.approx(1e3)

    def test_empty_mask_rejected(self):
        empty = np.zeros(self.mesh.shape, dtype=bool)
        with pytest.raises(FieldError):
            AppliedField(empty, (1, 0, 0), SineWaveform(1e3, 1e9))

    def test_zero_direction_rejected(self):
        with pytest.raises(FieldError):
            AppliedField(self.mask, (0, 0, 0), SineWaveform(1e3, 1e9))

    def test_non_callable_waveform_rejected(self):
        with pytest.raises(FieldError):
            AppliedField(self.mask, (1, 0, 0), 42.0)

    def test_marked_time_dependent(self):
        term = AppliedField(self.mask, (1, 0, 0), SineWaveform(1e3, 1e9))
        assert term.time_dependent
