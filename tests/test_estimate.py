"""Dedicated tests for circuit-level cost estimation (circuits/estimate).

The estimate layer had only indirect coverage through the area-table
experiment; these tests pin ``circuit_cost`` aggregation, the
``CircuitCost.per_word`` amortisation arithmetic, the scalar-versus-
data-parallel contrast on the 4-bit ripple-carry adder (the
circuit-level generalisation of the paper's 4.16x gate result), and the
error paths.
"""

import pytest

from repro.circuits import (
    CellLibrary,
    CellSpec,
    default_library,
    ripple_carry_adder,
)
from repro.circuits.estimate import (
    CircuitCost,
    circuit_cost,
    parallel_vs_scalar,
)
from repro.circuits.synth import full_adder
from repro.errors import NetlistError


@pytest.fixture(scope="module")
def unit_library():
    """Hand-priced cells so aggregate figures are exactly checkable."""
    return CellLibrary(
        [
            CellSpec("MAJ3", area=3.0, delay=0.5, energy=7.0),
            CellSpec("XOR2", area=2.0, delay=0.25, energy=5.0),
            CellSpec("INV", area=0.0, delay=0.0, energy=0.0),
            CellSpec("BUF", area=0.0, delay=0.0, energy=0.0),
        ]
    )


class TestCircuitCost:
    def test_full_adder_aggregation(self, unit_library):
        netlist, _, _ = full_adder()
        cost = circuit_cost(netlist, unit_library)
        # 1 MAJ3 (carry) + 2 XOR2 (sum chain).
        assert cost.n_cells == 3
        assert cost.area == pytest.approx(3.0 + 2 * 2.0)
        assert cost.energy == pytest.approx(7.0 + 2 * 5.0)
        # Critical path: the two chained XORs.
        assert cost.delay == pytest.approx(2 * 0.25)

    def test_delay_follows_critical_path_not_cell_sum(self, unit_library):
        netlist = ripple_carry_adder(2)
        cost = circuit_cost(netlist, unit_library)
        assert cost.n_cells == 6  # 2 full adders
        path = netlist.critical_path()
        expected_delay = sum(
            unit_library.get(netlist.node(name).kind).delay
            for name in path
            if netlist.node(name).kind not in ("input", "const0", "const1")
        )
        assert cost.delay == pytest.approx(expected_delay)
        assert cost.delay < 6 * 0.5  # far below the every-cell sum

    def test_free_cells_cost_nothing(self, unit_library):
        netlist, _, _ = full_adder()
        netlist.add_cell("fa_inv", "INV", ("fa_sum",))
        netlist.mark_output("fa_inv")
        with_inv = circuit_cost(netlist, unit_library)
        assert with_inv.n_cells == 4  # counted as a cell...
        assert with_inv.area == pytest.approx(7.0)  # ...but free

    def test_unknown_kind_raises(self, unit_library):
        netlist, _, _ = full_adder()
        bare = CellLibrary([CellSpec("MAJ3", 1.0, 1.0, 1.0)])
        with pytest.raises(NetlistError, match="XOR2.*not in library"):
            circuit_cost(netlist, bare)


class TestPerWord:
    def test_amortisation_arithmetic(self):
        cost = CircuitCost(area=8.0, delay=0.5, energy=16.0, n_cells=4)
        per_word = cost.per_word(8)
        assert per_word.area == pytest.approx(1.0)
        assert per_word.energy == pytest.approx(2.0)
        assert per_word.delay == cost.delay  # latency does not divide
        assert per_word.n_cells == cost.n_cells

    def test_single_word_is_identity(self):
        cost = CircuitCost(area=8.0, delay=0.5, energy=16.0, n_cells=4)
        assert cost.per_word(1) == cost

    def test_invalid_word_count_raises(self):
        cost = CircuitCost(area=1.0, delay=1.0, energy=1.0, n_cells=1)
        with pytest.raises(NetlistError, match="n_words"):
            cost.per_word(0)


class TestParallelVsScalar:
    @pytest.fixture(scope="class")
    def rca4_comparison(self):
        return parallel_vs_scalar(ripple_carry_adder(4), n_words=8)

    def test_area_and_energy_favour_parallel(self, rca4_comparison):
        """One 8-bit circuit beats eight scalar copies (Section V.B)."""
        assert rca4_comparison.n_words == 8
        # ~3.2x circuit-level area saving from the shared waveguides.
        assert rca4_comparison.area_ratio > 3.0
        # Energy scales per channel in the cost model: break-even, never
        # worse than the scalar farm.
        assert rca4_comparison.energy_ratio == pytest.approx(1.0)

    def test_scalar_total_scales_linearly(self, rca4_comparison):
        scalar_one = circuit_cost(ripple_carry_adder(4), default_library(1))
        total = rca4_comparison.scalar_total
        assert total.area == pytest.approx(8 * scalar_one.area)
        assert total.energy == pytest.approx(8 * scalar_one.energy)
        assert total.n_cells == 8 * scalar_one.n_cells
        assert total.delay == pytest.approx(scalar_one.delay)

    def test_parallel_total_is_one_wide_circuit(self, rca4_comparison):
        parallel_one = circuit_cost(
            ripple_carry_adder(4), default_library(8)
        )
        assert rca4_comparison.parallel_total == parallel_one

    def test_delay_ratio_reflects_longer_parallel_gates(
        self, rca4_comparison
    ):
        # Multi-frequency gates are physically longer, so the parallel
        # implementation trades some latency for its area/energy win.
        assert 0.0 < rca4_comparison.delay_ratio <= 1.0

    def test_invalid_word_count_raises(self):
        with pytest.raises(NetlistError, match="n_words"):
            parallel_vs_scalar(ripple_carry_adder(2), n_words=0)
