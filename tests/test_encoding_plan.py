"""Tests for repro.core.encoding and repro.core.frequency_plan."""

import math

import pytest

from repro.errors import DispersionError, EncodingError
from repro.core.encoding import (
    PhaseEncoding,
    bits_to_int,
    int_to_bits,
    validate_bit,
    validate_word,
)
from repro.core.frequency_plan import FrequencyPlan
from repro.units import GHZ
from repro.waveguide import Waveguide


class TestPhaseEncoding:
    def setup_method(self):
        self.encoding = PhaseEncoding()

    def test_code_points(self):
        assert self.encoding.encode(0) == 0.0
        assert self.encoding.encode(1) == pytest.approx(math.pi)

    def test_decode_near_code_points(self):
        assert self.encoding.decode(0.1) == 0
        assert self.encoding.decode(math.pi - 0.1) == 1
        assert self.encoding.decode(-math.pi + 0.1) == 1

    def test_decode_wraps(self):
        assert self.encoding.decode(2 * math.pi + 0.05) == 0
        assert self.encoding.decode(3 * math.pi) == 1

    def test_roundtrip(self):
        for bit in (0, 1):
            assert self.encoding.decode(self.encoding.encode(bit)) == bit

    def test_word_helpers(self):
        phases = self.encoding.encode_word([1, 0, 1])
        assert self.encoding.decode_word(phases) == [1, 0, 1]

    def test_margin_peaks_at_code_points(self):
        assert self.encoding.margin(0.0) == pytest.approx(math.pi / 2)
        assert self.encoding.margin(math.pi) == pytest.approx(math.pi / 2)
        assert self.encoding.margin(math.pi / 2) == pytest.approx(0.0)

    def test_custom_threshold(self):
        strict = PhaseEncoding(threshold=0.9 * math.pi)
        assert strict.decode(0.8 * math.pi) == 0

    def test_invalid_threshold(self):
        with pytest.raises(EncodingError):
            PhaseEncoding(threshold=0.0)
        with pytest.raises(EncodingError):
            PhaseEncoding(threshold=math.pi)

    def test_encode_rejects_non_bits(self):
        with pytest.raises(EncodingError):
            self.encoding.encode(2)
        with pytest.raises(EncodingError):
            self.encoding.encode("1")


class TestBitHelpers:
    def test_validate_bit_accepts_bool(self):
        assert validate_bit(True) == 1
        assert validate_bit(False) == 0

    def test_validate_bit_accepts_exact_floats(self):
        assert validate_bit(1.0) == 1

    def test_validate_bit_rejects(self):
        for bad in (2, -1, 0.5, None, "0"):
            with pytest.raises(EncodingError):
                validate_bit(bad)

    def test_validate_word_width(self):
        assert validate_word([1, 0], width=2) == [1, 0]
        with pytest.raises(EncodingError):
            validate_word([1, 0], width=3)

    def test_int_to_bits_little_endian(self):
        assert int_to_bits(5, 4) == [1, 0, 1, 0]
        assert int_to_bits(0, 3) == [0, 0, 0]
        assert int_to_bits(255, 8) == [1] * 8

    def test_int_to_bits_range_checks(self):
        with pytest.raises(EncodingError):
            int_to_bits(8, 3)
        with pytest.raises(EncodingError):
            int_to_bits(-1, 3)
        with pytest.raises(EncodingError):
            int_to_bits(0, 0)

    def test_bits_to_int_roundtrip(self):
        for value in (0, 1, 5, 170, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value


class TestFrequencyPlan:
    def test_paper_plan(self):
        plan = FrequencyPlan.paper_byte_plan()
        assert plan.n_bits == 8
        assert plan.channel(0) == pytest.approx(10 * GHZ)
        assert plan.channel(7) == pytest.approx(80 * GHZ)

    def test_uniform_constructor(self):
        plan = FrequencyPlan.uniform(4, 10 * GHZ, 5 * GHZ)
        assert plan.frequencies == [10e9, 15e9, 20e9, 25e9]

    def test_uniform_validation(self):
        with pytest.raises(EncodingError):
            FrequencyPlan.uniform(0, 10 * GHZ, 5 * GHZ)
        with pytest.raises(EncodingError):
            FrequencyPlan.uniform(4, 10 * GHZ, 0.0)

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(EncodingError):
            FrequencyPlan([1e10, 1e10])

    def test_empty_and_negative_rejected(self):
        with pytest.raises(EncodingError):
            FrequencyPlan([])
        with pytest.raises(EncodingError):
            FrequencyPlan([-1e9])

    def test_min_spacing(self):
        plan = FrequencyPlan([10e9, 40e9, 20e9])
        assert plan.min_spacing() == pytest.approx(10e9)
        assert FrequencyPlan([1e10]).min_spacing() == math.inf

    def test_wavelengths_descend(self, paper_dispersion):
        plan = FrequencyPlan.paper_byte_plan()
        lams = plan.wavelengths(paper_dispersion)
        assert all(a > b for a, b in zip(lams, lams[1:]))

    def test_validate_against_passes_paper_plan(self, paper_dispersion):
        plan = FrequencyPlan.paper_byte_plan()
        assert plan.validate_against(paper_dispersion) is plan

    def test_validate_rejects_below_band_edge(self, paper_dispersion):
        plan = FrequencyPlan([1e9])  # below the 3.64 GHz edge
        with pytest.raises(DispersionError):
            plan.validate_against(paper_dispersion)

    def test_validate_rejects_too_close_channels(self, paper_dispersion):
        plan = FrequencyPlan([10e9, 10.05e9])
        with pytest.raises(EncodingError, match="too close"):
            plan.validate_against(paper_dispersion)

    def test_describe(self):
        text = FrequencyPlan.paper_byte_plan().describe()
        assert "10 GHz" in text and "80 GHz" in text
