"""Compile-once execution layer: signatures, caches, executor serving.

The conformance harness (:mod:`tests.test_circuit_conformance`) pins the
*numerics* of packed and coalesced execution; this module pins the
*lifecycle*: content-hash signatures of structurally equal netlists,
LRU hit/miss/invalidate behaviour of the compile cache, recompilation
when a netlist grows, and the executor's validation and bookkeeping.
"""

import pytest

from repro.circuits import (
    CellFault,
    CircuitEngine,
    CircuitExecutor,
    CompiledCircuitCache,
    GateBindings,
    compile_circuit,
    netlist_signature,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.core.faults import TransducerFault
from repro.errors import EncodingError, NetlistError

N_BITS = 2


def xor_pair(title):
    """A tiny two-XOR netlist; structure is identical for any title."""
    netlist = Netlist(title)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell("x", "XOR2", ("a", "b"))
    netlist.add_cell("y", "XOR2", ("x", "c"))
    netlist.mark_output("y")
    return netlist


BATCH = [
    {"a": 0, "b": 1, "c": 1},
    {"a": 1, "b": 1, "c": 0},
    {"a": 1, "b": 0, "c": 1},
]


class TestNetlistSignature:
    def test_structural_equality_ignores_object_and_title(self):
        assert netlist_signature(xor_pair("one")) == netlist_signature(
            xor_pair("two")
        )

    def test_topology_edit_changes_signature(self):
        netlist = xor_pair("grow")
        before = netlist_signature(netlist)
        netlist.add_cell("z", "XOR2", ("x", "y"))
        netlist.mark_output("z")
        assert netlist_signature(netlist) != before

    def test_output_marking_changes_signature(self):
        netlist = xor_pair("outputs")
        before = netlist_signature(netlist)
        netlist.mark_output("x")  # same DAG, different observed set
        assert netlist_signature(netlist) != before


class TestCompileCache:
    def test_hit_on_structurally_equal_netlist(self):
        bindings = GateBindings(n_bits=N_BITS)
        cache = CompiledCircuitCache(max_entries=4)
        first = cache.get_or_compile(xor_pair("a"), bindings)
        second = cache.get_or_compile(xor_pair("b"), bindings)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_miss_after_mutation(self):
        bindings = GateBindings(n_bits=N_BITS)
        cache = CompiledCircuitCache(max_entries=4)
        netlist = xor_pair("mutate")
        first = cache.get_or_compile(netlist, bindings)
        netlist.add_cell("z", "XOR2", ("x", "y"))
        netlist.mark_output("z")
        second = cache.get_or_compile(netlist, bindings)
        assert second is not first
        assert cache.misses == 2
        assert len(cache) == 2

    def test_lru_eviction(self):
        bindings = GateBindings(n_bits=N_BITS)
        cache = CompiledCircuitCache(max_entries=1)
        small = xor_pair("small")
        cache.get_or_compile(small, bindings)
        cache.get_or_compile(ripple_carry_adder(2), bindings)
        assert len(cache) == 1
        cache.get_or_compile(small, bindings)  # evicted -> recompiles
        assert cache.misses == 3
        assert cache.hits == 0

    def test_engine_recompiles_after_growth(self):
        netlist = xor_pair("engine")
        engine = CircuitEngine(netlist, n_bits=N_BITS)
        artifact = engine.compiled()
        assert engine.compiled() is artifact  # stable while unchanged
        assert artifact.topology_revision == netlist.topology_revision
        netlist.add_cell("z", "XOR2", ("x", "y"))
        netlist.mark_output("z")
        regrown = engine.compiled()
        assert regrown is not artifact
        assert regrown.topology_revision == netlist.topology_revision
        result = engine.run(BATCH)
        assert result.outputs == netlist.evaluate_batch(BATCH)

    def test_precision_flip_misses_and_both_serve_correctly(self):
        """Backend identity is part of the compile key: flipping the
        precision between runs must recompile (a float32 artifact bakes
        complex64 weights a float64 caller must never receive), and both
        artifacts must decode the batch correctly."""
        from repro.backends import NumpyBackend

        cache = CompiledCircuitCache(max_entries=4)
        netlist = xor_pair("precision")
        double = GateBindings(n_bits=N_BITS, backend=NumpyBackend("double"))
        single = GateBindings(n_bits=N_BITS, backend=NumpyBackend("single"))
        art64 = cache.get_or_compile(netlist, double)
        art32 = cache.get_or_compile(netlist, single)
        assert art32 is not art64
        assert (cache.hits, cache.misses) == (0, 2)
        assert len(cache) == 2
        # Each precision hits its own artifact on re-request.
        assert cache.get_or_compile(xor_pair("precision2"), double) is art64
        assert cache.get_or_compile(xor_pair("precision3"), single) is art32
        assert cache.hits == 2
        expected = netlist.evaluate_batch(BATCH)
        assert art64.run(BATCH).outputs == expected
        assert art32.run(BATCH).outputs == expected

    def test_artifact_runs_standalone(self):
        netlist = xor_pair("direct")
        bindings = GateBindings(n_bits=N_BITS)
        artifact = compile_circuit(netlist, bindings)
        assert artifact.packable
        assert artifact.n_physical_cells == 2
        result = artifact.run(BATCH)
        assert result.outputs == netlist.evaluate_batch(BATCH)


class TestExecutorValidation:
    def test_unknown_mode_rejected(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        with pytest.raises(NetlistError, match="unknown execution mode"):
            executor.submit(xor_pair("m"), BATCH, mode="spice")

    def test_empty_batch_rejected(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        with pytest.raises(NetlistError, match="no assignments"):
            executor.submit(xor_pair("e"), [])

    def test_missing_input_rejected_at_submit(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        with pytest.raises(NetlistError, match="no value supplied"):
            executor.submit(xor_pair("i"), [{"a": 0, "b": 1}])

    def test_fault_range_rejected_at_submit(self):
        """Bad fault coordinates raise at submit, not mid-flush."""
        executor = CircuitExecutor(n_bits=N_BITS)
        fault = CellFault(
            "x", TransducerFault("dead-source", channel=N_BITS, input_index=0)
        )
        with pytest.raises(EncodingError, match="out of range"):
            executor.submit(xor_pair("f"), BATCH, faults=[fault])
        assert executor.pending_words == 0

    def test_max_block_validated(self):
        with pytest.raises(NetlistError, match="max_block"):
            CircuitExecutor(n_bits=N_BITS, max_block=0)


class TestExecutorServing:
    def test_result_forces_flush(self):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("lazy")
        ticket = executor.submit(netlist, BATCH)
        assert not ticket.done
        result = ticket.result()  # forces the pending queue to execute
        assert ticket.done
        assert result.outputs == netlist.evaluate_batch(BATCH)

    def test_twins_share_one_compile(self):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        first = executor.submit(xor_pair("t1"), BATCH)
        second = executor.submit(xor_pair("t2"), BATCH)
        executor.flush()
        assert first.result().outputs == second.result().outputs
        assert executor.cache.misses == 1
        assert executor.stats["blocks"] == 1
        assert executor.stats["coalesced_requests"] == 2

    def test_strict_failure_is_per_ticket(self):
        """A strict error resolves through its own ticket only."""
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("strict")
        healthy = executor.submit(netlist, BATCH, strict=True)
        assert healthy.result().correct

    def test_describe_mentions_cache_counters(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        executor.run(xor_pair("d"), BATCH)
        text = executor.describe()
        assert "packed blocks" in text
        assert "compile cache" in text


class TestExecutorFailureBookkeeping:
    """Failed flushes must leave no queue residue and count errors.

    Regression class for the ``_queue_born`` audit: a flush that raises
    mid-queue (e.g. out of the compile step) previously could strand
    per-key state, so the latency sweep kept chasing a ghost key.  All
    per-key bookkeeping now clears in a ``finally`` and every failure
    class lands in a distinct ``executor.errors.*`` counter.
    """

    def test_failed_flush_leaves_no_residue(self, monkeypatch):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("boom")
        ticket = executor.submit(netlist, BATCH)

        def explode(netlist, bindings):
            raise RuntimeError("compile exploded")

        monkeypatch.setattr(executor.cache, "get_or_compile", explode)
        executor.flush()
        assert executor._queues == {}
        assert executor._queue_words == {}
        assert executor._queue_born == {}
        assert executor.pending_words == 0
        assert ticket.done
        with pytest.raises(RuntimeError, match="compile exploded"):
            ticket.result()
        assert executor.stats["errors"]["flush"] == 1
        assert executor.error_count == 1

    def test_max_latency_still_triggers_after_failed_flush(
        self, monkeypatch
    ):
        executor = CircuitExecutor(
            n_bits=N_BITS, max_block=1024, max_latency=0.0
        )
        netlist = xor_pair("flaky")
        real = executor.cache.get_or_compile
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient compile failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(executor.cache, "get_or_compile", flaky)
        # max_latency=0 flushes on the submit itself; the flush fails.
        first = executor.submit(netlist, BATCH)
        assert first.done
        with pytest.raises(RuntimeError, match="transient"):
            first.result()
        # No residue survived, so the latency sweep fires again for
        # fresh traffic instead of chasing a stale key.
        second = executor.submit(netlist, BATCH)
        assert second.done
        assert second.result().outputs == netlist.evaluate_batch(BATCH)
        assert executor.stats["errors"]["flush"] == 1

    def test_mutated_netlist_counted(self):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("mutant")
        ticket = executor.submit(netlist, BATCH)
        netlist.add_cell("z", "XOR2", ("x", "y"))
        netlist.mark_output("z")
        executor.flush()
        with pytest.raises(NetlistError, match="mutated"):
            ticket.result()
        assert executor.stats["errors"]["mutated"] == 1
        assert executor.error_count == 1

    def test_strict_decode_error_counted(self, monkeypatch):
        """A dead strict decode lands in errors.decode, per ticket."""
        from repro.circuits import compiled as compiled_mod
        from repro.errors import SimulationError

        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("dead")
        ticket = executor.submit(netlist, BATCH, strict=True)
        monkeypatch.setattr(
            compiled_mod.CompiledCircuit,
            "_first_dead",
            lambda self, packed, start, end: SimulationError(
                "decode of cell 'y' is dead"
            ),
        )
        executor.flush()
        assert ticket.done
        with pytest.raises(SimulationError, match="dead"):
            ticket.result()
        assert executor.stats["errors"]["decode"] == 1
        assert executor.error_count == 1

    def test_healthy_traffic_counts_no_errors(self):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        executor.run(xor_pair("clean"), BATCH)
        assert executor.error_count == 0
        assert all(
            count == 0 for count in executor.stats["errors"].values()
        )

    def test_sweep_runs_even_when_submit_flushes_another_key(self):
        """Regression: the latency sweep used to live in an ``elif``
        after the max_block check, so a submit that flushed its *own*
        queue skipped the sweep and left other keys' stale requests
        waiting past ``max_latency`` for as long as mixed traffic kept
        hitting the high-water branch."""
        import time as _time

        executor = CircuitExecutor(
            n_bits=N_BITS, max_block=3, max_latency=0.01
        )
        netlist = xor_pair("stale")
        slow = executor.submit(netlist, BATCH[:1])  # 1 word: below mark
        _time.sleep(0.03)  # now older than max_latency
        # A different key (trace mode) whose submit reaches max_block.
        fast = executor.submit(netlist, BATCH, mode="trace")
        assert fast.done  # flushed by its own high-water mark
        assert slow.done  # swept by the same submit, despite the flush
        assert slow.result().outputs == netlist.evaluate_batch(BATCH[:1])

    def test_sweep_method_bounds_latency_without_traffic(self):
        """``sweep()`` (the daemon flush thread's entry point) flushes
        stale queues with no new submit to piggyback on."""
        import time as _time

        executor = CircuitExecutor(
            n_bits=N_BITS, max_block=1024, max_latency=0.005
        )
        netlist = xor_pair("idle")
        ticket = executor.submit(netlist, BATCH)
        assert not ticket.done  # young queue: submit-time sweep skipped it
        assert executor.sweep() == 0
        _time.sleep(0.02)
        assert executor.sweep() == 1
        assert ticket.done
        assert ticket.result().outputs == netlist.evaluate_batch(BATCH)

    def test_describe_reports_error_rate(self):
        executor = CircuitExecutor(n_bits=N_BITS, max_block=1024)
        netlist = xor_pair("rate")
        ticket = executor.submit(netlist, BATCH)
        netlist.add_cell("z", "XOR2", ("x", "y"))
        netlist.mark_output("z")
        executor.flush()
        with pytest.raises(NetlistError):
            ticket.result()
        text = executor.describe()
        assert "error rate" in text
        assert "1 errors" in text


def inv_chain(length):
    """Netlists of distinct lengths have distinct content hashes."""
    netlist = Netlist(f"chain{length}")
    netlist.add_input("a")
    previous = "a"
    for index in range(length):
        name = f"n{index}"
        netlist.add_cell(name, "INV", (previous,))
        previous = name
    netlist.mark_output(previous)
    return netlist


class TestFallbackEngineLifecycle:
    """The per-op fallback path's engine map and error handling.

    Regression class for two leaks: the engine map grew without bound
    (one entry per distinct netlist a long-lived executor ever served
    through the fallback path), and a non-``ReproError`` out of the
    engine escaped :meth:`_run_fallback` with the ticket stranded
    unresolved and the request already counted as served.
    """

    #: Placement noise forces the fallback path (packed execution
    #: cannot reproduce per-cell geometry perturbation).
    @staticmethod
    def _noise():
        from repro.waveguide.noise import NoiseModel

        return NoiseModel(position_sigma=5e-9, seed=7)

    def test_fallback_engine_map_is_lru_bounded(self):
        executor = CircuitExecutor(n_bits=N_BITS, cache_size=2)
        noise = self._noise()
        for length in (1, 2, 3, 4):
            ticket = executor.submit(
                inv_chain(length), [{"a": 1}], noise=noise
            )
            assert ticket.done  # fallback serves immediately
            assert ticket.result().correct
        assert executor.stats["fallbacks"] == 4
        assert len(executor._engines) == 2
        assert executor.obs.counter("executor.engine_evictions") == 2

    def test_fallback_engine_reuse_refreshes_lru_order(self):
        executor = CircuitExecutor(n_bits=N_BITS, cache_size=2)
        noise = self._noise()
        executor.submit(inv_chain(1), [{"a": 1}], noise=noise)
        executor.submit(inv_chain(2), [{"a": 1}], noise=noise)
        engines = dict(executor._engines)
        # Touch chain1 again: it becomes most-recent, so chain3's
        # arrival must evict chain2, not chain1.
        executor.submit(inv_chain(1), [{"a": 0}], noise=noise)
        assert dict(executor._engines) == engines  # reused, not rebuilt
        executor.submit(inv_chain(3), [{"a": 1}], noise=noise)
        kept = set(executor._engines)
        assert netlist_signature(inv_chain(1)) in kept
        assert netlist_signature(inv_chain(2)) not in kept

    def test_fallback_resolves_ticket_on_non_repro_error(
        self, monkeypatch
    ):
        """A ``TypeError`` out of the engine (e.g. a broken replaced
        hook) must resolve the ticket and count as a fallback error,
        not escape ``submit`` with the ticket stranded."""
        from repro.circuits import engine as engine_mod

        executor = CircuitExecutor(n_bits=N_BITS)

        def broken_run(self, *args, **kwargs):
            raise TypeError("hook returned the wrong shape")

        monkeypatch.setattr(engine_mod.CircuitEngine, "run", broken_run)
        ticket = executor.submit(
            xor_pair("broken"), BATCH, noise=self._noise()
        )
        assert ticket.done
        with pytest.raises(TypeError, match="wrong shape"):
            ticket.result()
        assert executor.stats["errors"]["fallback"] == 1
        assert executor.error_count == 1

    def test_fallback_repro_error_still_counted(self, monkeypatch):
        """The pre-fix behaviour (ReproError handling) is preserved:
        strict physics failures resolve through the ticket."""
        from repro.circuits import engine as engine_mod
        from repro.errors import SimulationError

        executor = CircuitExecutor(n_bits=N_BITS)

        def dead_run(self, *args, **kwargs):
            raise SimulationError("decode of cell 'y' is dead")

        monkeypatch.setattr(engine_mod.CircuitEngine, "run", dead_run)
        ticket = executor.submit(
            xor_pair("sick"), BATCH, noise=self._noise(), strict=True
        )
        assert ticket.done
        with pytest.raises(SimulationError, match="dead"):
            ticket.result()
        assert executor.stats["errors"]["fallback"] == 1


class TestRequestTraces:
    """Per-request tracing on the executor itself (PR 10)."""

    def test_trace_rides_ticket_and_result(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        ticket = executor.submit(xor_pair("traced"), BATCH)
        result = ticket.result()
        trace = result.trace
        assert trace is ticket.trace
        assert trace.request_id == ticket.request_id
        assert trace.path == "packed"
        assert trace.n_entries == len(BATCH)
        assert trace.compile_cache == "miss"
        assert trace.block_id == "blk-1"
        assert trace.compile_s > 0.0
        assert trace.execute_s > 0.0
        assert trace.decode_s > 0.0

    def test_compile_cache_hit_recorded_on_second_block(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        first = executor.run(xor_pair("hot"), BATCH)
        second = executor.run(xor_pair("hot"), BATCH)
        assert first.trace.compile_cache == "miss"
        assert second.trace.compile_cache == "hit"
        assert second.trace.block_id == "blk-2"

    def test_coalesced_tenants_listed(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        t1 = executor.submit(xor_pair("co"), BATCH, request_id="one")
        t2 = executor.submit(xor_pair("co"), BATCH, request_id="two")
        executor.flush()
        assert t1.trace.coalesced_with == ["two"]
        assert t2.trace.coalesced_with == ["one"]
        assert t1.trace.block_id == t2.trace.block_id
        assert t1.trace.block_requests == 2
        assert t1.trace.block_words == 2 * len(BATCH)

    def test_trace_survives_error_resolution(self):
        executor = CircuitExecutor(n_bits=N_BITS)
        ticket = executor.submit(xor_pair("mut"), BATCH)
        ticket2_netlist = xor_pair("mut")
        ticket2 = executor.submit(ticket2_netlist, BATCH)
        ticket2_netlist.add_input("d")  # mutate between submit and flush
        executor.flush()
        with pytest.raises(NetlistError, match="mutated"):
            ticket2.result()
        assert ticket2.trace is not None  # breakdown survives the error
        assert ticket.result().trace.block_id == "blk-1"

    def test_disabled_tracing_resolves_with_none(self):
        executor = CircuitExecutor(n_bits=N_BITS, trace_requests=False)
        ticket = executor.submit(xor_pair("fast"), BATCH)
        result = ticket.result()
        assert ticket.trace is None
        assert result.trace is None
        assert result.correct

    def test_wire_round_trip_preserves_breakdown(self):
        from repro.circuits.executor import RequestTrace

        executor = CircuitExecutor(n_bits=N_BITS)
        trace = executor.run(xor_pair("wire"), BATCH).trace
        rebuilt = RequestTrace.from_dict(trace.as_dict())
        assert rebuilt.as_dict() == trace.as_dict()
        # Unknown wire keys (a newer server) are ignored, not fatal.
        widened = dict(trace.as_dict(), future_field=1)
        assert RequestTrace.from_dict(widened).request_id == (
            trace.request_id
        )


class TestRegistryIsolation:
    """An executor's private registry must never leak spans onto the
    process-global stack, whatever thread flushes (PR 10 regression:
    ``_flush_requests`` used the global ``obs.span`` instead of the
    executor's own registry)."""

    def test_flush_spans_land_in_executor_registry_only(self):
        from repro import obs

        global_registry = obs.MetricsRegistry(enabled=True)
        executor = CircuitExecutor(
            n_bits=N_BITS, obs=obs.MetricsRegistry(enabled=True)
        )
        with obs.use_registry(global_registry):
            executor.run(xor_pair("iso"), BATCH)
        global_names = {
            node["name"] for node in global_registry.snapshot()["spans"]
        }
        assert "executor/flush" not in global_names
        executor_names = {
            node["name"] for node in executor.obs.snapshot()["spans"]
        }
        assert "executor/flush" in executor_names

    def test_concurrent_submits_never_touch_global_span_stack(self):
        import threading

        from repro import obs

        global_registry = obs.MetricsRegistry(enabled=True)
        executor = CircuitExecutor(
            n_bits=N_BITS, max_latency=0.001,
            obs=obs.MetricsRegistry(enabled=True),
        )
        errors = []

        def worker(index):
            try:
                ticket = executor.submit(xor_pair("conc"), BATCH)
                ticket.result(timeout=1.0)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with obs.use_registry(global_registry):
            # The main thread holds an open span while handler-style
            # threads submit and flush: their executor spans must not
            # appear as children of (or siblings to) this one.
            with global_registry.span("main-work"):
                threads = [
                    threading.Thread(target=worker, args=(index,))
                    for index in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
        assert not errors
        spans = global_registry.snapshot()["spans"]
        assert [node["name"] for node in spans] == ["main-work"]
        (main,) = spans
        assert main["children"] == []
        assert executor.obs.counter("executor.requests") == 8
