"""Tests for repro.core.metrics and repro.core.scaling."""

import math

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.metrics import (
    CostModel,
    comparison,
    gate_cost,
    scalar_baseline_cost,
)
from repro.core.scaling import (
    compensation_amplitudes,
    decode_margin,
    excitation_energies,
    margin_vs_inputs,
)
from repro.core.simulate import GateSimulator
from repro.units import GHZ
from repro.waveguide import Waveguide


class TestCostModel:
    def test_defaults_positive(self):
        model = CostModel()
        assert model.transducer_delay > 0
        assert model.transducer_energy > 0

    def test_validation(self):
        with pytest.raises(LayoutError):
            CostModel(transducer_delay=0.0)
        with pytest.raises(LayoutError):
            CostModel(transducer_energy=-1.0)


class TestGateCost:
    def test_transducer_count(self, paper_layout):
        cost = gate_cost(paper_layout)
        assert cost.n_transducers == 32  # 24 sources + 8 detectors

    def test_area_matches_layout(self, paper_layout):
        cost = gate_cost(paper_layout)
        assert cost.area == pytest.approx(paper_layout.area)

    def test_energy_counts_events(self, paper_layout):
        model = CostModel(transducer_energy=5e-18)
        cost = gate_cost(paper_layout, model)
        assert cost.energy == pytest.approx(32 * 5e-18)

    def test_delay_includes_propagation(self, paper_layout):
        model = CostModel()
        cost = gate_cost(paper_layout, model)
        assert cost.delay > 2 * model.transducer_delay

    def test_as_row_formatting(self, paper_layout):
        row = gate_cost(paper_layout).as_row("x")
        assert row[0] == "x"
        assert len(row) == 5


class TestScalarBaseline:
    def test_same_transducer_total(self, paper_layout):
        scalar = scalar_baseline_cost(paper_layout)
        parallel = gate_cost(paper_layout)
        assert scalar.n_transducers == parallel.n_transducers

    def test_energy_parity(self, paper_layout):
        # The paper's headline: same energy (same transducer count).
        result = comparison(paper_layout)
        assert result.energy_ratio == pytest.approx(1.0)

    def test_area_ratio_in_paper_ballpark(self, paper_layout):
        # Paper: 4.16x.  Same-shape check: between 2.5x and 5x.
        result = comparison(paper_layout)
        assert 2.5 < result.area_ratio < 5.0

    def test_delay_near_parity(self, paper_layout):
        result = comparison(paper_layout)
        assert 0.5 < result.delay_ratio <= 1.1

    def test_scalar_frequency_choice(self, paper_layout):
        low = scalar_baseline_cost(paper_layout, scalar_frequency=10 * GHZ)
        high = scalar_baseline_cost(paper_layout, scalar_frequency=80 * GHZ)
        # Higher frequency -> shorter wavelength -> smaller scalar gates.
        assert high.area < low.area

    def test_waveguide_length_sums_gates(self, paper_layout):
        scalar = scalar_baseline_cost(paper_layout)
        assert scalar.waveguide_length > 8 * 200e-9  # 8 gates, each > 200 nm


class TestCompensation:
    @pytest.fixture(scope="class")
    def long_layout(self):
        plan = FrequencyPlan([10 * GHZ])
        return InlineGateLayout(
            Waveguide(), plan, n_inputs=9, multipliers=[2]
        )

    def test_amplitudes_shape(self, long_layout):
        amplitudes = compensation_amplitudes(long_layout)
        assert amplitudes.shape == (1, 9)

    def test_monotonic_decreasing_drive(self, long_layout):
        # Paper: E(I_n) < E(I_{n-1}) < ... < E(I_1): the farthest
        # (first) source is driven hardest.
        amplitudes = compensation_amplitudes(long_layout)[0]
        assert all(a > b for a, b in zip(amplitudes, amplitudes[1:]))

    def test_max_normalisation(self, long_layout):
        amplitudes = compensation_amplitudes(long_layout, normalize="max")[0]
        assert amplitudes.max() == pytest.approx(1.0)

    def test_last_normalisation(self, long_layout):
        amplitudes = compensation_amplitudes(long_layout, normalize="last")[0]
        assert amplitudes[-1] == pytest.approx(1.0)
        assert amplitudes[0] > 1.0

    def test_unknown_normalisation(self, long_layout):
        with pytest.raises(LayoutError):
            compensation_amplitudes(long_layout, normalize="median")

    def test_energies_are_squared_amplitudes(self):
        amplitudes = np.array([[1.0, 0.5]])
        np.testing.assert_allclose(
            excitation_energies(amplitudes), [[1.0, 0.25]]
        )


class TestDecodeMargin:
    def test_compensation_equalises_margin(self):
        plan = FrequencyPlan([10 * GHZ])
        layout = InlineGateLayout(Waveguide(), plan, n_inputs=9, multipliers=[2])
        uniform, _ = decode_margin(layout)
        amplitudes = compensation_amplitudes(layout)[0]
        compensated, _ = decode_margin(layout, amplitudes=amplitudes)
        assert compensated > uniform
        # Perfect compensation: margin = 1/m.
        assert compensated == pytest.approx(1.0 / 9.0, rel=1e-6)

    def test_even_fanin_rejected(self):
        plan = FrequencyPlan([10 * GHZ])
        layout = InlineGateLayout(Waveguide(), plan, n_inputs=4)
        with pytest.raises(LayoutError):
            decode_margin(layout)

    def test_margin_vs_inputs_decreasing(self):
        results = margin_vs_inputs(
            Waveguide(), 10 * GHZ, (3, 5, 7), multiplier=2
        )
        margins = [m for _, m in results]
        assert margins[0] > margins[1] > margins[2]

    def test_margin_vs_inputs_compensated_positive(self):
        results = margin_vs_inputs(
            Waveguide(), 10 * GHZ, (3, 7, 11), compensated=True, multiplier=2
        )
        assert all(m > 0 for _, m in results)

    def test_even_input_counts_rejected(self):
        with pytest.raises(LayoutError):
            margin_vs_inputs(Waveguide(), 10 * GHZ, (4,))

    def test_negative_margin_predicts_simulator_failure(self):
        # Find a fan-in whose uncompensated margin is negative and check
        # the end-to-end simulator actually fails on the worst pattern.
        plan = FrequencyPlan([10 * GHZ])
        layout = InlineGateLayout(
            Waveguide(), plan, n_inputs=13, multipliers=[2]
        )
        margin, worst = decode_margin(layout)
        assert margin < 0
        gate = DataParallelGate(layout)
        words = [[b] for b in worst]
        result = GateSimulator(gate).run_phasor(words)
        assert not result.correct
        # And compensation repairs it.
        graded = GateSimulator(
            gate, amplitudes=compensation_amplitudes(layout)
        ).run_phasor(words)
        assert graded.correct
