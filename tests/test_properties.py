"""Property-based tests (hypothesis) for core invariants."""

import math
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.phase import phase_at
from repro.core.encoding import (
    PhaseEncoding,
    bits_to_int,
    int_to_bits,
)
from repro.core.gate import DataParallelGate, GateKind, majority, parity
from repro.core.encoding import words_to_bit_array
from repro.core.frequency_plan import FrequencyPlan
from repro.core.layout import InlineGateLayout
from repro.errors import EncodingError
from repro.mm.integrators import rk4_step
from repro.physics.dispersion import FvmswDispersion
from repro.physics.solve import wavenumber_for_frequency
from repro.materials import FECOB_PMA
from repro.waveguide import Waveguide

bits_lists = st.lists(st.integers(0, 1), min_size=1, max_size=16)
odd_bits = st.lists(st.integers(0, 1), min_size=1, max_size=15).filter(
    lambda b: len(b) % 2 == 1
)


class TestEncodingProperties:
    @given(st.integers(0, 2**16 - 1), st.integers(1, 16))
    def test_int_bits_roundtrip(self, value, width):
        if value >= (1 << width):
            value %= 1 << width
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(bits_lists)
    def test_bits_int_roundtrip(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits

    @given(st.integers(0, 1), st.floats(-0.5, 0.5))
    def test_decode_tolerates_phase_error(self, bit, error):
        # Any phase error below the pi/2 threshold never flips a bit.
        encoding = PhaseEncoding()
        assert encoding.decode(encoding.encode(bit) + error) == bit

    @given(st.floats(-20.0, 20.0))
    def test_decode_is_2pi_periodic(self, phase):
        encoding = PhaseEncoding()
        assert encoding.decode(phase) == encoding.decode(phase + 2 * math.pi)

    @given(st.floats(-10.0, 10.0))
    def test_margin_bounded(self, phase):
        margin = PhaseEncoding().margin(phase)
        assert 0.0 <= margin <= math.pi / 2 + 1e-12


class TestBooleanProperties:
    @given(odd_bits)
    def test_majority_complement_symmetry(self, bits):
        # MAJ(~b) = ~MAJ(b).
        complemented = [1 - b for b in bits]
        assert majority(complemented) == 1 - majority(bits)

    @given(odd_bits, st.randoms(use_true_random=False))
    def test_majority_permutation_invariant(self, bits, rng):
        shuffled = list(bits)
        rng.shuffle(shuffled)
        assert majority(shuffled) == majority(bits)

    @given(bits_lists)
    def test_parity_equals_xor_fold(self, bits):
        expected = 0
        for b in bits:
            expected ^= b
        assert parity(bits) == expected

    @given(odd_bits)
    def test_majority_matches_phasor_interference(self, bits):
        # The physical mechanism: sum of unit phasors at 0/pi has the
        # phase of the majority.
        total = sum(1.0 if b == 0 else -1.0 for b in bits)
        physical = 0 if total > 0 else 1
        assert majority(bits) == physical


@lru_cache(maxsize=None)
def _semantics_gate(kind, inverted):
    """Small laid-out gates (layouts are expensive: cache per case)."""
    n_inputs = 2 if GateKind(kind).uses_amplitude_readout else 3
    plan = FrequencyPlan.uniform(2, 10e9, 10e9)
    layout = InlineGateLayout(
        Waveguide(), plan, n_inputs=n_inputs, inverted_outputs=list(inverted)
    )
    return DataParallelGate(layout, kind=kind)


class TestGateSemanticsProperties:
    """Randomised consistency of the gate's Boolean semantics.

    ``expected_output`` (the scalar golden path), ``expected_output_batch``
    (the array-native path batched evaluation uses) and ``truth_table``
    must agree on every random word batch, with and without the
    detector-placement inversion.
    """

    #: (kind, inverted_outputs) cases over the two cached small layouts.
    CASES = [
        (GateKind.MAJORITY, (False, True)),
        (GateKind.AND, (True, False)),
        (GateKind.OR, (False, False)),
        (GateKind.XOR, (False, True)),
        (GateKind.XNOR, (True, True)),
    ]

    @staticmethod
    def _gate(kind, inverted):
        return _semantics_gate(kind, inverted)

    @given(st.integers(0, 2**31 - 1), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar_golden(self, seed, apply_inversion):
        rng = np.random.default_rng(seed)
        for kind, inverted in self.CASES:
            gate = self._gate(kind, inverted)
            words_batch = [
                [
                    rng.integers(0, 2, size=gate.n_bits).tolist()
                    for _ in range(gate.n_data_inputs)
                ]
                for _ in range(4)
            ]
            batch = gate.expected_output_batch(
                words_batch, apply_inversion=apply_inversion
            )
            scalar = [
                gate.expected_output(words, apply_inversion=apply_inversion)
                for words in words_batch
            ]
            assert batch == scalar

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_inversion_flips_exactly_inverted_channels(self, seed):
        rng = np.random.default_rng(seed)
        for kind, inverted in self.CASES:
            gate = self._gate(kind, inverted)
            words = [
                rng.integers(0, 2, size=gate.n_bits).tolist()
                for _ in range(gate.n_data_inputs)
            ]
            direct = gate.expected_output(words, apply_inversion=False)
            placed = gate.expected_output(words, apply_inversion=True)
            for channel, is_inverted in enumerate(
                gate.layout.inverted_outputs
            ):
                if is_inverted:
                    assert placed[channel] == 1 - direct[channel]
                else:
                    assert placed[channel] == direct[channel]

    def test_truth_table_consistent_with_expected_output(self):
        # Uniform words drive every channel with one truth-table row, so
        # the (uninverted) golden word is that row's output everywhere.
        for kind, inverted in self.CASES:
            gate = self._gate(kind, inverted)
            for bits, output in gate.truth_table():
                words = [[b] * gate.n_bits for b in bits]
                assert gate.expected_output(words, apply_inversion=False) == [
                    output
                ] * gate.n_bits
                assert gate.expected_output_batch(
                    [words], apply_inversion=False
                ) == [[output] * gate.n_bits]

    def test_truth_table_covers_all_data_combinations(self):
        for kind, inverted in self.CASES:
            gate = self._gate(kind, inverted)
            rows = gate.truth_table()
            assert len(rows) == 2**gate.n_data_inputs
            assert len({bits for bits, _ in rows}) == len(rows)


class TestWordArrayProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 4), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_words_to_bit_array_roundtrip(self, seed, n_words, width):
        rng = np.random.default_rng(seed)
        batch = [
            [rng.integers(0, 2, size=width).tolist() for _ in range(n_words)]
            for _ in range(3)
        ]
        bits = words_to_bit_array(batch, n_words=n_words, width=width)
        assert bits.shape == (3, n_words, width)
        assert bits.tolist() == batch

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_accepts_floats_and_bools_like_validate_bit(self, seed):
        rng = np.random.default_rng(seed)
        ints = rng.integers(0, 2, size=(2, 2, 3))
        assert words_to_bit_array(ints.astype(float)).tolist() == ints.tolist()
        assert words_to_bit_array(ints.astype(bool)).tolist() == ints.tolist()

    def test_rejects_non_binary_values(self):
        with pytest.raises(EncodingError):
            words_to_bit_array([[[0, 2]]])
        with pytest.raises(EncodingError):
            words_to_bit_array([[[0.5, 1.0]]])
        with pytest.raises(EncodingError):
            words_to_bit_array([[[0, 1], [1]]])  # ragged

    def test_rejects_wrong_shape(self):
        with pytest.raises(EncodingError, match="expected 2 input words"):
            words_to_bit_array([[[0, 1]]], n_words=2)
        with pytest.raises(EncodingError, match="expected 3"):
            words_to_bit_array([[[0, 1]]], width=3)


class TestDispersionProperties:
    dispersion = FvmswDispersion(FECOB_PMA, 1e-9)

    @given(st.floats(5e9, 200e9))
    @settings(max_examples=30, deadline=None)
    def test_solver_inverts_dispersion(self, frequency):
        k = wavenumber_for_frequency(self.dispersion, frequency)
        assert self.dispersion.frequency(k) == pytest.approx(
            frequency, rel=1e-6
        )

    @given(st.floats(1e6, 5e8), st.floats(1e6, 5e8))
    @settings(max_examples=30, deadline=None)
    def test_monotonicity(self, k1, k2):
        lo, hi = sorted((k1, k2))
        assert self.dispersion.frequency(lo) <= self.dispersion.frequency(hi)


class TestLayoutProperties:
    @given(
        st.lists(
            st.floats(8e9, 90e9), min_size=1, max_size=6, unique=True
        ).filter(
            lambda fs: all(
                abs(a - b) > 0.05 * min(a, b)
                for i, a in enumerate(fs)
                for b in fs[i + 1 :]
            )
        ),
        st.integers(1, 5),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_auto_layout_always_valid(self, frequencies, n_inputs):
        layout = InlineGateLayout(
            Waveguide(), FrequencyPlan(frequencies), n_inputs=n_inputs
        )
        layout.validate()  # raises on any violated invariant
        # Detectors strictly after every source.
        last_source = max(max(row) for row in layout.source_positions)
        assert all(p > last_source for p in layout.detector_positions)

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_length_grows_with_inputs(self, n_inputs):
        plan = FrequencyPlan([10e9])
        shorter = InlineGateLayout(Waveguide(), plan, n_inputs=n_inputs)
        longer = InlineGateLayout(Waveguide(), plan, n_inputs=n_inputs + 1)
        assert longer.total_length > shorter.total_length


class TestSignalProperties:
    @given(
        st.floats(0.1, 1.0),
        st.floats(-math.pi, math.pi),
        st.sampled_from([5e9, 10e9, 25e9]),
    )
    @settings(max_examples=25, deadline=None)
    def test_lock_in_recovers_any_phase(self, amplitude, phase, frequency):
        t = np.arange(0, 2e-9, 1.0 / (64 * frequency))
        signal = amplitude * np.sin(2 * np.pi * frequency * t + phase)
        measured = phase_at(t, signal, frequency)
        wrapped = (measured - phase + math.pi) % (2 * math.pi) - math.pi
        assert abs(wrapped) < 0.01

    @given(st.floats(0.0, 2 * math.pi), st.floats(0.01, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_superposed_tone_pair_amplitude(self, delta, amplitude):
        # |e^{i0} + e^{i delta}| = 2|cos(delta/2)| -- interference law.
        z = 1.0 + np.exp(1j * delta)
        assert abs(z) == pytest.approx(
            2 * abs(math.cos(delta / 2)), abs=1e-9
        )


class TestGoertzelProperties:
    @given(
        st.floats(0.05, 1.0),
        st.floats(-math.pi, math.pi),
        st.sampled_from([7e9, 10e9, 23e9]),
    )
    @settings(max_examples=20, deadline=None)
    def test_goertzel_matches_lock_in(self, amplitude, phase, frequency):
        from repro.analysis.goertzel import goertzel_phasor
        from repro.analysis.phase import lock_in

        t = np.arange(0, 2e-9, 1.0 / (64 * frequency))
        signal = amplitude * np.sin(2 * np.pi * frequency * t + phase)
        zg = goertzel_phasor(t, signal, frequency)
        zl = lock_in(t, signal, frequency) * np.exp(0.5j * math.pi)
        assert abs(zg - zl) < 0.03 * amplitude + 1e-6

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_sparkline_length_preserved(self, values):
        from repro.analysis.ascii_plot import sparkline

        assert len(sparkline(values)) == len(values)


class TestFaultProperties:
    @given(st.integers(0, 1), st.integers(0, 2))
    @settings(max_examples=12, deadline=None)
    def test_stuck_fault_response_equals_forced_input(self, stuck_bit, site):
        """A stuck-phase fault at input ``site`` behaves exactly like
        driving that input with the stuck value -- per channel."""
        from repro.core.faults import TransducerFault, simulate_fault
        from repro.core.frequency_plan import FrequencyPlan
        from repro.core.gate import DataParallelGate
        from repro.core.layout import InlineGateLayout
        from repro.core.simulate import GateSimulator

        plan = FrequencyPlan([10e9])
        gate = DataParallelGate(
            InlineGateLayout(Waveguide(), plan, n_inputs=3)
        )
        fault = TransducerFault(f"stuck-phase-{stuck_bit}", 0, site)
        for bits in ((0, 0, 1), (1, 1, 0), (0, 1, 0)):
            words = [[b] for b in bits]
            faulty = simulate_fault(gate, fault, words)
            forced = list(bits)
            forced[site] = stuck_bit
            golden = GateSimulator(gate).run_phasor(
                [[b] for b in forced]
            ).decoded
            assert faulty == golden


class TestIntegratorProperties:
    @given(st.floats(0.01, 0.2), st.floats(0.5, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_rk4_linear_decay_never_overshoots(self, dt, rate):
        y = np.array([1.0])
        y_next = rk4_step(lambda t, yy: -rate * yy, 0.0, y, dt)
        assert 0.0 < y_next[0] <= 1.0

    @given(st.floats(0.001, 0.05))
    @settings(max_examples=20, deadline=None)
    def test_rk4_rotation_preserves_norm(self, dt):
        # y' = i*y as a 2-vector rotation; RK4 norm drift is O(dt^5).
        def rhs(t, y):
            return np.array([-y[1], y[0]])

        y = np.array([1.0, 0.0])
        for _ in range(50):
            y = rk4_step(rhs, 0.0, y, dt)
        assert np.linalg.norm(y) == pytest.approx(1.0, rel=1e-4)
