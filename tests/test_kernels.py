"""Equivalence tests for the zero-allocation kernel layer.

The fused in-place path (:mod:`repro.mm.kernels`, the ``*_into``
integrators, the batched gate backend) must reproduce the allocating
reference implementations bit-for-bit up to floating-point reassociation
(<= 1e-12 relative).  Every fusion mechanism gets a case here: the
contiguous diff stencil, the dense trailing operator (and its
large-mesh fallback), the merged cell-linear matrix, the stacked-slope
Runge-Kutta kernels, scalar and per-cell damping, and the batched
waveguide evaluation.
"""

import numpy as np
import pytest

from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.errors import SimulationError
from repro.materials import FECOB_PMA
from repro.mm import (
    AppliedField,
    DemagField,
    ExchangeField,
    LLGWorkspace,
    Mesh,
    SineWaveform,
    State,
    ThinFilmDemagField,
    UniaxialAnisotropyField,
    ZeemanField,
    integrate,
    rk4_step,
    rk4_step_into,
    rkf45_step,
    rkf45_step_into,
)
from repro.mm.integrators import RKScratch, integrate_into
from repro.mm.llg import effective_field, llg_rhs_from_field
from repro.units import GHZ
from repro.waveguide import Waveguide

RTOL = 1e-12

MESHES = {
    "1d": ((64, 1, 1), (4e-9, 50e-9, 1e-9)),
    "film": ((24, 8, 1), (4e-9, 4e-9, 1e-9)),
    "3d": ((8, 6, 5), (4e-9, 4e-9, 4e-9)),
    "wide": ((4, 80, 1), (4e-9, 4e-9, 1e-9)),  # trailing-fusion fallback
}


def _make_state(mesh_key, seed=3):
    shape, cell = MESHES[mesh_key]
    mesh = Mesh(*shape, *cell)
    return State.random(mesh, FECOB_PMA, seed=seed)


def _term_factories(mesh):
    applied_mask = np.zeros(mesh.shape, dtype=bool)
    applied_mask[: max(mesh.shape[0] // 4, 1)] = True
    return {
        "exchange": lambda: ExchangeField(),
        "anisotropy": lambda: UniaxialAnisotropyField(),
        "thinfilm": lambda: ThinFilmDemagField(),
        "zeeman": lambda: ZeemanField((1.2e4, -3.0e3, 2.0e4)),
        "demag": lambda: DemagField(mesh),
        "applied": lambda: AppliedField(
            applied_mask, (1.0, 0.0, 0.0), SineWaveform(5e3, 10 * GHZ)
        ),
    }


def _assert_field_equivalent(state, terms, t=0.0):
    workspace = LLGWorkspace(state.mesh, state.material, terms)
    reference = effective_field(state, terms, t)
    fused = workspace.effective_field_into(state, t).copy()
    scale = max(float(np.max(np.abs(reference))), 1.0)
    np.testing.assert_allclose(fused, reference, rtol=0, atol=RTOL * scale)


class TestFieldEquivalence:
    @pytest.mark.parametrize("mesh_key", sorted(MESHES))
    @pytest.mark.parametrize(
        "name",
        ["exchange", "anisotropy", "thinfilm", "zeeman", "demag", "applied"],
    )
    def test_single_term(self, mesh_key, name):
        state = _make_state(mesh_key)
        term = _term_factories(state.mesh)[name]()
        _assert_field_equivalent(state, [term], t=0.3e-10)

    @pytest.mark.parametrize("mesh_key", sorted(MESHES))
    @pytest.mark.parametrize(
        "combo",
        [
            ("exchange", "anisotropy"),
            ("exchange", "thinfilm"),
            ("anisotropy", "thinfilm"),
            ("exchange", "anisotropy", "thinfilm"),
            ("exchange", "anisotropy", "thinfilm", "zeeman"),
            ("exchange", "anisotropy", "thinfilm", "zeeman", "applied"),
            ("exchange", "anisotropy", "thinfilm", "zeeman", "demag", "applied"),
        ],
        ids="+".join,
    )
    def test_term_combinations(self, mesh_key, combo):
        state = _make_state(mesh_key)
        factories = _term_factories(state.mesh)
        terms = [factories[name]() for name in combo]
        _assert_field_equivalent(state, terms, t=0.3e-10)

    def test_add_field_into_accumulates(self):
        state = _make_state("film")
        base = np.full(state.mesh.shape + (3,), 123.0)
        out = base.copy()
        term = ExchangeField()
        term.add_field_into(state, out)
        np.testing.assert_allclose(
            out - base,
            term.field(state),
            rtol=0,
            atol=RTOL * float(np.max(np.abs(term.field(state)))),
        )

    def test_noncontiguous_state_falls_back(self):
        state = _make_state("film")
        terms = [ExchangeField(), UniaxialAnisotropyField()]
        workspace = LLGWorkspace(state.mesh, state.material, terms)
        reference = effective_field(state, terms)
        state.m = np.asfortranarray(state.m)  # break C-contiguity
        fused = workspace.effective_field_into(state).copy()
        scale = float(np.max(np.abs(reference)))
        np.testing.assert_allclose(fused, reference, rtol=0, atol=RTOL * scale)

    def test_plan_follows_material_change(self):
        state = _make_state("film")
        terms = [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()]
        workspace = LLGWorkspace(state.mesh, state.material, terms)
        workspace.effective_field_into(state)  # builds the fused plan
        state.material = state.material.with_(ku=2.0 * state.material.ku)
        workspace.configure(state.material)
        reference = effective_field(state, terms)
        fused = workspace.effective_field_into(state).copy()
        scale = float(np.max(np.abs(reference)))
        np.testing.assert_allclose(fused, reference, rtol=0, atol=RTOL * scale)


class TestRhsEquivalence:
    @pytest.mark.parametrize("mesh_key", ["1d", "film", "3d"])
    @pytest.mark.parametrize("alpha_kind", ["material", "scalar", "percell"])
    def test_llg_rhs(self, mesh_key, alpha_kind):
        state = _make_state(mesh_key)
        terms = [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()]
        if alpha_kind == "material":
            alpha = None
        elif alpha_kind == "scalar":
            alpha = 0.37
        else:
            alpha = np.linspace(0.02, 0.5, state.mesh.shape[0]).reshape(
                -1, 1, 1
            ) * np.ones(state.mesh.shape)
        workspace = LLGWorkspace(
            state.mesh, state.material, terms, alpha=alpha
        )
        h = effective_field(state, terms)
        reference = llg_rhs_from_field(state.m, h, state.material, alpha=alpha)
        fused = workspace.rhs_from_field_into(
            state.m, h, np.empty_like(state.m)
        )
        scale = float(np.max(np.abs(reference)))
        np.testing.assert_allclose(fused, reference, rtol=0, atol=RTOL * scale)

    @pytest.mark.parametrize("mesh_key", ["1d", "film"])
    def test_rk_steps(self, mesh_key):
        state = _make_state(mesh_key)
        terms = [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()]
        workspace = LLGWorkspace(state.mesh, state.material, terms)

        def rhs(t, m):
            state.m = m
            h = effective_field(state, terms, t)
            return llg_rhs_from_field(m, h, state.material)

        rhs_into = workspace.bound_rhs(state)
        m0 = state.m.copy()
        dt = 1e-13

        reference = rk4_step(rhs, 0.0, m0.copy(), dt)
        fused = rk4_step_into(rhs_into, 0.0, m0.copy(), dt, workspace.rk)
        scale = float(np.max(np.abs(reference)))
        np.testing.assert_allclose(fused, reference, rtol=0, atol=RTOL * scale)

        ref5, ref_err = rkf45_step(rhs, 0.0, m0.copy(), dt)
        got5, got_err = rkf45_step_into(
            rhs_into, 0.0, m0.copy(), dt, workspace.rk
        )
        scale = float(np.max(np.abs(ref5)))
        np.testing.assert_allclose(got5, ref5, rtol=0, atol=RTOL * scale)
        # The error estimate is a difference of near-equal solutions, so
        # reassociation noise is amplified relative to its tiny value.
        assert got_err == pytest.approx(ref_err, rel=1e-6, abs=RTOL * scale)

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_integrate_into_matches_integrate(self, adaptive):
        def rhs(t, y):
            return -2.0 * y + np.sin(40.0 * t)

        def rhs_into(t, y, out):
            np.multiply(y, -2.0, out=out)
            out += np.sin(40.0 * t)
            return out

        y0 = np.linspace(0.5, 1.5, 12)
        work = RKScratch(y0.shape)
        t_ref, y_ref = integrate(
            rhs, 0.0, y0.copy(), 0.5, 1e-3, adaptive=adaptive, tol=1e-8
        )
        y_live = y0.copy()
        t_got, _ = integrate_into(
            rhs_into, 0.0, y_live, 0.5, 1e-3, work, adaptive=adaptive, tol=1e-8
        )
        assert t_got == pytest.approx(t_ref)
        np.testing.assert_allclose(y_live, y_ref, rtol=1e-12, atol=1e-15)


class TestRejectionBudget:
    """A persistently rejected adaptive step must exhaust ``max_steps``
    instead of spinning forever (historically it never counted)."""

    @staticmethod
    def _thrashing_rhs():
        # Alternating huge slopes keep the embedded error estimate large
        # at any step size, so every attempt is rejected while the step
        # stays above dt_min.
        calls = {"n": 0}

        def rhs(t, y):
            calls["n"] += 1
            sign = 1.0 if calls["n"] % 2 else -1.0
            return sign * 1e30 * np.ones_like(y)

        return rhs

    def test_integrate_raises(self):
        with pytest.raises(SimulationError, match="max_steps"):
            integrate(
                self._thrashing_rhs(),
                0.0,
                np.zeros(4),
                1.0,
                0.1,
                adaptive=True,
                tol=1e-8,
                dt_min=0.0,
                max_steps=64,
            )

    def test_integrate_into_raises(self):
        rhs = self._thrashing_rhs()

        def rhs_into(t, y, out):
            out[...] = rhs(t, y)
            return out

        with pytest.raises(SimulationError, match="max_steps"):
            integrate_into(
                rhs_into,
                0.0,
                np.zeros(4),
                1.0,
                0.1,
                RKScratch((4,)),
                adaptive=True,
                tol=1e-8,
                dt_min=0.0,
                max_steps=64,
            )


class TestBatchedGateEquivalence:
    @staticmethod
    def _majority_gate(n_bits=2):
        plan = FrequencyPlan.uniform(n_bits, 10 * GHZ, 10 * GHZ)
        layout = InlineGateLayout(Waveguide(), plan, n_inputs=3)
        return DataParallelGate(layout)

    def test_run_phasor_batch_all_words(self):
        gate = self._majority_gate()
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        assert len(patterns) == 8  # every input word of the 3-input gate
        sequential = [simulator.run_phasor(words) for words in patterns]
        batched = simulator.run_phasor_batch(patterns)
        for serial, batch in zip(sequential, batched):
            assert batch.decoded == serial.decoded
            assert batch.expected == serial.expected
            for a, b in zip(serial.decodes, batch.decodes):
                assert b.phase == pytest.approx(a.phase, abs=1e-9)
                assert b.amplitude == pytest.approx(a.amplitude, rel=1e-9)
                assert b.margin == pytest.approx(a.margin, abs=1e-9)

    def test_run_batch_all_words(self):
        gate = self._majority_gate()
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        sequential = [simulator.run(words) for words in patterns]
        batched = simulator.run_batch(patterns)
        assert len(batched) == len(patterns)
        for serial, batch in zip(sequential, batched):
            assert batch.decoded == serial.decoded
            assert batch.correct == serial.correct
            for channel, trace in serial.traces.items():
                np.testing.assert_allclose(
                    batch.traces[channel], trace, rtol=0, atol=1e-9
                )

    def test_batch_length_mismatch_rejected(self):
        gate = self._majority_gate()
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()[:2]
        with pytest.raises(SimulationError, match="noise models"):
            simulator.run_phasor_batch(patterns, noises=[None])


class TestFloat32Workspace:
    """The single-precision backend against the float64 ground truth.

    The default-backend classes above pin the float64 path at <= 1e-12;
    this class pins the float32 variant at its documented ~1e-5 relative
    tolerance (float32 eps accumulated over the fused GEMMs) and checks
    the workspace buffers genuinely run single-precision.
    """

    RTOL32 = 1e-5

    def _float32_pair(self, mesh_key, combo):
        from repro.backends import NumpyBackend

        state64 = _make_state(mesh_key)
        factories = _term_factories(state64.mesh)
        terms64 = [factories[name]() for name in combo]
        workspace64 = LLGWorkspace(state64.mesh, state64.material, terms64)

        state32 = _make_state(mesh_key)
        state32.m = state32.m.astype(np.float32)
        backend = NumpyBackend("single")
        term_factories32 = dict(_term_factories(state32.mesh))
        term_factories32["demag"] = lambda: DemagField(
            state32.mesh, backend=backend
        )
        terms32 = [term_factories32[name]() for name in combo]
        workspace32 = LLGWorkspace(
            state32.mesh, state32.material, terms32, backend=backend
        )
        return (state64, workspace64), (state32, workspace32)

    @pytest.mark.parametrize(
        "combo",
        [
            ("exchange", "anisotropy", "thinfilm"),
            ("exchange", "anisotropy", "thinfilm", "zeeman", "demag"),
        ],
        ids="+".join,
    )
    def test_effective_field_tracks_float64(self, combo):
        pair64, pair32 = self._float32_pair("film", combo)
        state64, workspace64 = pair64
        state32, workspace32 = pair32
        reference = workspace64.effective_field_into(state64, 0.0).copy()
        fused = workspace32.effective_field_into(state32, 0.0)
        assert fused.dtype == np.float32
        scale = max(float(np.max(np.abs(reference))), 1.0)
        np.testing.assert_allclose(
            fused, reference, rtol=0, atol=self.RTOL32 * scale
        )

    def test_rk4_step_tracks_float64(self):
        combo = ("exchange", "anisotropy", "thinfilm")
        pair64, pair32 = self._float32_pair("film", combo)
        state64, workspace64 = pair64
        state32, workspace32 = pair32
        dt = 1e-13
        out64 = rk4_step_into(
            workspace64.bound_rhs(state64), 0.0, state64.m.copy(), dt,
            workspace64.rk,
        )
        out32 = rk4_step_into(
            workspace32.bound_rhs(state32), 0.0, state32.m.copy(), dt,
            workspace32.rk,
        )
        assert out32.dtype == np.float32
        np.testing.assert_allclose(
            out32, out64, rtol=0, atol=self.RTOL32
        )

    def test_workspace_buffers_are_float32(self):
        from repro.backends import NumpyBackend

        state = _make_state("film")
        workspace = LLGWorkspace(
            state.mesh, state.material,
            [ExchangeField(), UniaxialAnisotropyField(), ThinFilmDemagField()],
            backend=NumpyBackend("single"),
        )
        assert workspace.h.dtype == np.float32
        assert workspace.rk.k_matrix.dtype == np.float32
        assert workspace.rk.rk4_b.dtype == np.float32
