"""The pluggable compute-backend layer: registry, dtype discipline, FFTs.

Three concerns are pinned here:

* backend *identity* -- registry names, ``key``/``tag``, the process
  default and its ``set_backend`` swap semantics;
* the float64 default being a strict no-op layer (casts return the same
  object, ``out=`` FFTs are bit-identical to the allocating calls), so
  the existing <=1e-12 equivalence harnesses keep pinning the historical
  numerics unchanged;
* dtype *discipline* under float32 -- an end-to-end circuit run through
  the phasor and trace paths whose bulk intermediates (baked weights,
  excitation blocks, carrier bases, level GEMM outputs) must all stay in
  float32/complex64, never silently upcasting to float64/complex128.
"""

import numpy as np
import pytest

from repro.backends import (
    Backend,
    NumpyBackend,
    ScipyFFTBackend,
    available_backends,
    construct_backend,
    get_backend,
    set_backend,
)
from repro.circuits import CircuitEngine, GateBindings
from repro.circuits.netlist import Netlist
from repro.errors import BackendError


def _xor_pair(title):
    netlist = Netlist(title)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell("x", "XOR2", ("a", "b"))
    netlist.add_cell("y", "XOR2", ("x", "c"))
    netlist.mark_output("y")
    return netlist


BATCH = [
    {"a": 0, "b": 1, "c": 1},
    {"a": 1, "b": 1, "c": 0},
    {"a": 1, "b": 0, "c": 1},
]


class TestIdentity:
    def test_default_is_numpy_double(self):
        backend = get_backend()
        assert backend.key == ("numpy", "double")
        assert backend.real_dtype == np.float64
        assert backend.complex_dtype == np.complex128

    def test_registry_constructs_every_name(self):
        for name in available_backends():
            backend = construct_backend(name)
            assert isinstance(backend, Backend)
        assert construct_backend("numpy32").key == ("numpy", "single")
        assert construct_backend("scipy-fft64").key == ("scipy-fft", "double")

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            construct_backend("torch")

    def test_unknown_precision_rejected(self):
        with pytest.raises(BackendError, match="unknown precision"):
            NumpyBackend("half")

    def test_tags(self):
        assert NumpyBackend("double").tag == "numpy64"
        assert NumpyBackend("single").tag == "numpy32"
        assert ScipyFFTBackend("single").tag == "scipy-fft32"

    def test_equality_and_hash_follow_key(self):
        assert NumpyBackend("double") == NumpyBackend("double")
        assert NumpyBackend("double") != NumpyBackend("single")
        assert hash(NumpyBackend("single")) == hash(NumpyBackend("single"))

    def test_set_backend_roundtrip(self):
        original = get_backend()
        try:
            installed = set_backend("numpy32")
            assert get_backend() is installed
            assert get_backend().precision == "single"
            instance = NumpyBackend("double")
            assert set_backend(instance) is instance
            assert get_backend() is instance
        finally:
            set_backend(original)
        assert get_backend() is original

    def test_set_backend_rejects_garbage(self):
        with pytest.raises(BackendError, match="Backend instance or name"):
            set_backend(42)

    def test_threads_knob_validated(self):
        backend = NumpyBackend("double")
        assert backend.set_threads(4) is backend
        assert backend.threads == 4
        with pytest.raises(BackendError, match="threads"):
            backend.set_threads(0)


class TestDtypeHelpers:
    def test_double_cast_is_identity(self):
        """The float64 default must never copy: bit-identity of the
        historical path depends on casts being object no-ops."""
        backend = NumpyBackend("double")
        real = np.arange(4.0)
        cplx = np.arange(4.0) + 1j
        assert backend.cast(real) is real
        assert backend.cast(cplx, kind="complex") is cplx

    def test_single_cast_downcasts(self):
        backend = NumpyBackend("single")
        assert backend.cast(np.arange(4.0)).dtype == np.float32
        weights = backend.cast(np.arange(4.0) + 1j, kind="complex")
        assert weights.dtype == np.complex64

    def test_zeros_empty_dtypes(self):
        backend = NumpyBackend("single")
        assert backend.zeros((2, 3)).dtype == np.float32
        assert backend.empty((2, 3), kind="complex").dtype == np.complex64
        assert NumpyBackend("double").zeros(3, kind="complex").dtype == (
            np.complex128
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(BackendError, match="kind"):
            NumpyBackend("double").zeros(3, kind="quaternion")


class TestFFT:
    PADDED = (8, 6, 1)
    AXES = (0, 1, 2)

    def _signal(self, dtype=np.float64):
        rng = np.random.default_rng(7)
        return rng.standard_normal(self.PADDED).astype(dtype)

    def test_numpy_out_roundtrip_bit_identical(self):
        backend = NumpyBackend("double")
        signal = self._signal()
        reference = np.fft.rfftn(signal, s=self.PADDED, axes=self.AXES)
        spectrum = backend.empty(reference.shape, kind="complex")
        result = backend.rfftn(signal, s=self.PADDED, axes=self.AXES,
                               out=spectrum)
        assert result is spectrum
        np.testing.assert_array_equal(spectrum, reference)
        back = backend.empty(self.PADDED, kind="real")
        result = backend.irfftn(spectrum, s=self.PADDED, axes=self.AXES,
                                out=back)
        assert result is back
        np.testing.assert_array_equal(
            back, np.fft.irfftn(reference, s=self.PADDED, axes=self.AXES)
        )

    def test_numpy_single_preserves_float32(self):
        backend = NumpyBackend("single")
        spectrum = backend.rfftn(
            self._signal(np.float32), s=self.PADDED, axes=self.AXES
        )
        assert spectrum.dtype == np.complex64
        back = backend.irfftn(spectrum, s=self.PADDED, axes=self.AXES)
        assert back.dtype == np.float32

    def test_scipy_matches_numpy(self):
        try:
            backend = ScipyFFTBackend("double")
        except BackendError:
            pytest.skip("scipy not available")
        signal = self._signal()
        reference = np.fft.rfftn(signal, s=self.PADDED, axes=self.AXES)
        spectrum = backend.empty(reference.shape, kind="complex")
        result = backend.rfftn(signal, s=self.PADDED, axes=self.AXES,
                               out=spectrum)
        assert result is spectrum  # out= keeps one stable buffer identity
        np.testing.assert_allclose(spectrum, reference, rtol=1e-12,
                                   atol=1e-12)
        back = backend.irfftn(spectrum, s=self.PADDED, axes=self.AXES)
        np.testing.assert_allclose(back, signal, rtol=1e-12, atol=1e-12)


class TestDtypeDiscipline:
    """Satellite: nothing in a float32 circuit run silently upcasts."""

    N_BITS = 2

    def _engine(self):
        bindings = GateBindings(
            n_bits=self.N_BITS, backend=NumpyBackend("single")
        )
        return CircuitEngine(_xor_pair("f32"), bindings=bindings)

    def test_phasor_path_stays_complex64(self):
        engine = self._engine()
        result = engine.run(BATCH)
        assert result.correct
        artifact = engine.compiled()
        for plan in artifact.levels:
            if not plan.ops:
                continue
            assert plan.weights.dtype == np.complex64
            for op in plan.ops:
                assert op.weights.dtype == np.complex64
        # Excitation scratch and the model's memoised weight matrices
        # were allocated by the same backend.
        for excite in artifact._excite_buffers.values():
            assert excite.dtype == np.complex64
        model = engine.bindings.model()
        for weights in model._weights_cache.values():
            assert weights.dtype == np.complex64
        # The packed level GEMM inherits its operands' dtype.
        excite = next(iter(artifact._excite_buffers.values()))
        plan = next(p for p in artifact.levels if p.ops)
        assert (excite @ plan.weights).dtype == np.complex64

    def test_trace_path_stays_float32(self):
        engine = self._engine()
        result = engine.run_trace_batch(BATCH)
        assert result.correct
        model = engine.bindings.model()
        assert model._basis_cache, "trace run should memoise carrier bases"
        for basis_sin, basis_cos in model._basis_cache.values():
            assert basis_sin.dtype == np.float32
            assert basis_cos.dtype == np.float32

    def test_float32_results_match_float64_reference(self):
        """Numerics: the float32 circuit decodes the same outputs and
        its phasors track the float64 ground truth to the documented
        ~1e-5 relative tolerance."""
        netlist = _xor_pair("accuracy")
        double = GateBindings(n_bits=self.N_BITS,
                              backend=NumpyBackend("double"))
        single = GateBindings(n_bits=self.N_BITS,
                              backend=NumpyBackend("single"))
        engine64 = CircuitEngine(netlist, bindings=double)
        engine32 = CircuitEngine(netlist, bindings=single)
        assert engine32.run(BATCH).outputs == engine64.run(BATCH).outputs
        art64 = engine64.compiled()
        art32 = engine32.compiled()
        for plan64, plan32 in zip(art64.levels, art32.levels):
            if not plan64.ops:
                continue
            scale = np.max(np.abs(plan64.weights))
            assert np.max(
                np.abs(plan32.weights.astype(complex) - plan64.weights)
            ) <= 1e-5 * scale
