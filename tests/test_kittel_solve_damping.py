"""Tests for repro.physics.kittel, .solve and .damping."""

import math

import numpy as np
import pytest

from repro.constants import MU0
from repro.errors import DispersionError
from repro.materials import FECOB_PMA, PERMALLOY
from repro.physics.damping import (
    amplitude_after,
    attenuation_length,
    lifetime,
    propagation_delay,
    relaxation_rate,
)
from repro.physics.dispersion import ExchangeDispersion, FvmswDispersion
from repro.physics.kittel import (
    fmr_frequency_in_plane,
    fmr_frequency_perpendicular,
    kittel_sphere_frequency,
)
from repro.physics.solve import (
    dispersion_table,
    wavelength_for_frequency,
    wavenumber_for_frequency,
)


class TestKittel:
    def test_perpendicular_fmr_formula(self):
        h_int = FECOB_PMA.internal_field_perpendicular()
        expected = FECOB_PMA.gamma * MU0 * h_int / (2 * math.pi)
        assert fmr_frequency_perpendicular(FECOB_PMA) == pytest.approx(expected)

    def test_perpendicular_fmr_negative_when_unstable(self):
        assert fmr_frequency_perpendicular(PERMALLOY) < 0

    def test_in_plane_fmr_sqrt_form(self):
        h = 5e4
        expected = (
            PERMALLOY.gamma * MU0 * math.sqrt(h * (h + PERMALLOY.ms)) / (2 * math.pi)
        )
        assert fmr_frequency_in_plane(PERMALLOY, h) == pytest.approx(expected)

    def test_in_plane_rejects_negative_field(self):
        with pytest.raises(ValueError):
            fmr_frequency_in_plane(PERMALLOY, -1e6)

    def test_sphere_is_field_only(self):
        assert kittel_sphere_frequency(PERMALLOY, 1e5) == pytest.approx(
            PERMALLOY.gamma * MU0 * 1e5 / (2 * math.pi)
        )


class TestSolve:
    def setup_method(self):
        self.dispersion = FvmswDispersion(FECOB_PMA, 1e-9)

    def test_roundtrip_k_to_f_to_k(self):
        for k in (5e7, 1e8, 2.5e8):
            f = self.dispersion.frequency(k)
            assert wavenumber_for_frequency(self.dispersion, f) == pytest.approx(
                k, rel=1e-6
            )

    def test_wavelength_definition(self):
        f = 10e9
        k = wavenumber_for_frequency(self.dispersion, f)
        assert wavelength_for_frequency(self.dispersion, f) == pytest.approx(
            2 * math.pi / k
        )

    def test_paper_wavelength_at_10ghz(self):
        # lambda(10 GHz) ~ 81 nm; the paper's d1 = 166 nm = 2*lambda.
        lam = wavelength_for_frequency(self.dispersion, 10e9)
        assert lam == pytest.approx(83e-9, rel=0.05)

    def test_below_band_edge_raises(self):
        with pytest.raises(DispersionError, match="band edge"):
            wavenumber_for_frequency(self.dispersion, 1e9)

    def test_at_band_edge_raises(self):
        edge = self.dispersion.frequency(0.0)
        with pytest.raises(DispersionError):
            wavenumber_for_frequency(self.dispersion, edge)

    def test_negative_frequency_raises(self):
        with pytest.raises(DispersionError):
            wavenumber_for_frequency(self.dispersion, -1e9)

    def test_above_search_band_raises(self):
        with pytest.raises(DispersionError, match="searchable"):
            wavenumber_for_frequency(self.dispersion, 100e9, k_max=1e7)

    def test_wavelength_decreases_with_frequency(self):
        lams = [
            wavelength_for_frequency(self.dispersion, f * 1e9)
            for f in (10, 20, 40, 80)
        ]
        assert all(a > b for a, b in zip(lams, lams[1:]))

    def test_dispersion_table_consistency(self):
        freqs = [10e9, 20e9, 30e9]
        table = dispersion_table(self.dispersion, freqs)
        assert table["k"].shape == (3,)
        np.testing.assert_allclose(
            table["wavelength"], 2 * math.pi / table["k"]
        )
        assert np.all(table["group_velocity"] > 0)
        assert np.all(table["relaxation_rate"] > 0)


class TestDamping:
    def setup_method(self):
        self.dispersion = FvmswDispersion(FECOB_PMA, 1e-9)
        self.k = wavenumber_for_frequency(self.dispersion, 10e9)

    def test_lifetime_is_inverse_rate(self):
        assert lifetime(self.dispersion, self.k) == pytest.approx(
            1.0 / relaxation_rate(self.dispersion, self.k)
        )

    def test_attenuation_length_is_vg_times_tau(self):
        expected = self.dispersion.group_velocity(self.k) * lifetime(
            self.dispersion, self.k
        )
        assert attenuation_length(self.dispersion, self.k) == pytest.approx(
            expected
        )

    def test_amplitude_exponential_decay(self):
        length = attenuation_length(self.dispersion, self.k)
        assert amplitude_after(self.dispersion, self.k, length) == pytest.approx(
            math.exp(-1.0)
        )
        assert amplitude_after(self.dispersion, self.k, 0.0) == 1.0

    def test_amplitude_scales_linearly(self):
        a1 = amplitude_after(self.dispersion, self.k, 1e-7, amplitude=1.0)
        a2 = amplitude_after(self.dispersion, self.k, 1e-7, amplitude=2.0)
        assert a2 == pytest.approx(2 * a1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            amplitude_after(self.dispersion, self.k, -1e-9)

    def test_propagation_delay(self):
        v_g = self.dispersion.group_velocity(self.k)
        assert propagation_delay(self.dispersion, self.k, 1e-6) == pytest.approx(
            1e-6 / v_g
        )

    def test_lower_damping_longer_attenuation(self):
        # YIG-like alpha on the same film should stretch the decay length.
        low_loss = FvmswDispersion(FECOB_PMA.with_(alpha=0.0004), 1e-9)
        assert attenuation_length(low_loss, self.k) > attenuation_length(
            self.dispersion, self.k
        )

    def test_exchange_relaxation_alpha_omega(self):
        exchange = ExchangeDispersion(FECOB_PMA, 1e-9)
        k = 1e8
        assert relaxation_rate(exchange, k) == pytest.approx(
            FECOB_PMA.alpha * exchange.omega(k)
        )
