"""Tests for repro.core.faults (fault models and coverage)."""

import pytest

from repro.errors import EncodingError
from repro.core.faults import (
    FaultySimulator,
    TransducerFault,
    default_patterns,
    enumerate_faults,
    fault_coverage,
    simulate_fault,
)
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.units import GHZ
from repro.waveguide import Waveguide


@pytest.fixture(scope="module")
def small_gate():
    plan = FrequencyPlan.uniform(2, 10 * GHZ, 10 * GHZ)
    layout = InlineGateLayout(Waveguide(), plan, n_inputs=3)
    return DataParallelGate(layout)


class TestFaultModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(EncodingError):
            TransducerFault("open-circuit", 0, 0)

    def test_weak_severity_range(self):
        with pytest.raises(EncodingError):
            TransducerFault("weak-source", 0, 0, severity=1.0)
        with pytest.raises(EncodingError):
            TransducerFault("weak-source", 0, 0, severity=0.0)

    def test_describe(self):
        fault = TransducerFault("dead-source", 1, 2)
        assert fault.describe() == "dead-source@ch1.in2"
        weak = TransducerFault("weak-source", 0, 0, severity=0.3)
        assert "0.3" in weak.describe()

    def test_enumerate_counts(self, small_gate):
        faults = enumerate_faults(small_gate)
        # 4 kinds x 2 channels x 3 inputs.
        assert len(faults) == 24

    def test_enumerate_kind_filter(self, small_gate):
        faults = enumerate_faults(small_gate, kinds=("dead-source",))
        assert len(faults) == 6
        assert all(f.kind == "dead-source" for f in faults)

    def test_enumerate_rejects_unknown_kind(self, small_gate):
        with pytest.raises(EncodingError):
            enumerate_faults(small_gate, kinds=("gremlin",))

    def test_out_of_range_fault_site(self, small_gate):
        with pytest.raises(EncodingError):
            FaultySimulator(small_gate, TransducerFault("dead-source", 9, 0))
        with pytest.raises(EncodingError):
            FaultySimulator(small_gate, TransducerFault("dead-source", 0, 7))


class TestFaultySimulation:
    def test_dead_source_zeroes_amplitude(self, small_gate):
        fault = TransducerFault("dead-source", 0, 1)
        simulator = FaultySimulator(small_gate, fault)
        sources = simulator.build_sources([[0, 0]] * 3)
        assert sources[1].amplitude == 0.0
        assert sources[0].amplitude == 1.0  # neighbours untouched

    def test_stuck_phase_overrides_input(self, small_gate):
        fault = TransducerFault("stuck-phase-1", 1, 0)
        simulator = FaultySimulator(small_gate, fault)
        sources = simulator.build_sources([[0, 0]] * 3)
        victim = sources[1 * 3 + 0]
        assert victim.phase == pytest.approx(3.14159, rel=1e-3)

    def test_stuck_fault_flips_output(self, small_gate):
        # With inputs (0, 1, 0) the majority is 0; a stuck-1 on input 0
        # makes it (1, 1, 0) -> 1 on the faulty channel.
        fault = TransducerFault("stuck-phase-1", 0, 0)
        words = [[0, 0], [1, 1], [0, 0]]
        faulty = simulate_fault(small_gate, fault, words)
        golden = GateSimulator(small_gate).run_phasor(words).decoded
        assert golden == [0, 0]
        assert faulty[0] == 1  # (1,1,0) majority on the faulty channel
        assert faulty[1] == golden[1]

    def test_weak_source_below_threshold_is_logically_silent(self, small_gate):
        # A mildly weak source changes no logic decision on any pattern.
        fault = TransducerFault("weak-source", 0, 0, severity=0.8)
        for words in default_patterns(small_gate):
            golden = GateSimulator(small_gate).run_phasor(words).decoded
            assert simulate_fault(small_gate, fault, words) == golden


class TestCoverage:
    @pytest.fixture(scope="class")
    def coverage(self, small_gate):
        return fault_coverage(small_gate)

    def test_patterns_are_exhaustive(self, small_gate):
        patterns = default_patterns(small_gate)
        assert len(patterns) == 8  # 2^3 input combinations

    def test_phase_and_dead_faults_detected(self, coverage):
        undetected_kinds = {f.kind for f in coverage["undetected"]}
        assert "stuck-phase-0" not in undetected_kinds
        assert "stuck-phase-1" not in undetected_kinds
        assert "dead-source" not in undetected_kinds

    def test_weak_faults_escape_logic_testing(self, coverage):
        # The analogue-margin lesson: sub-threshold weak sources cannot
        # be caught by logic patterns.
        assert all(
            f.kind == "weak-source" for f in coverage["undetected"]
        )
        assert coverage["undetected"]  # and there is at least one

    def test_coverage_fraction_consistent(self, coverage):
        total = len(coverage["detected"]) + len(coverage["undetected"])
        assert total == coverage["n_faults"]
        assert coverage["coverage"] == pytest.approx(
            len(coverage["detected"]) / total
        )

    def test_detected_faults_record_pattern(self, coverage):
        for fault, pattern_index in coverage["detected"]:
            assert 0 <= pattern_index < coverage["n_patterns"]

    def test_weak_faults_fundamentally_logic_undetectable(self, small_gate):
        # Even a severe (5% amplitude) weak source never flips majority
        # logic in the noiseless model: when the other two inputs tie,
        # the weak source still casts the deciding vote correctly.
        faults = [TransducerFault("weak-source", 0, 0, severity=0.05)]
        result = fault_coverage(small_gate, faults=faults)
        assert result["coverage"] == 0.0

    def test_parametric_test_catches_weak_faults(self, small_gate):
        from repro.core.faults import parametric_coverage

        faults = [TransducerFault("weak-source", 0, 0, severity=0.05)]
        result = parametric_coverage(small_gate, faults=faults)
        assert result["coverage"] == 1.0

    def test_parametric_ignores_benign_weak_faults(self, small_gate):
        from repro.core.faults import parametric_coverage

        # 95% amplitude barely moves the margin: below-threshold only
        # with an absurdly tight threshold.
        faults = [TransducerFault("weak-source", 0, 0, severity=0.95)]
        result = parametric_coverage(small_gate, faults=faults)
        assert result["coverage"] == 0.0

    def test_parametric_detects_dead_source(self, small_gate):
        from repro.core.faults import parametric_coverage

        faults = [TransducerFault("dead-source", 1, 2)]
        result = parametric_coverage(small_gate, faults=faults)
        assert result["coverage"] == 1.0

    def test_empty_patterns_rejected(self, small_gate):
        with pytest.raises(EncodingError):
            fault_coverage(small_gate, patterns=[])
