"""Smoke tests executing every example script in-process.

Each ``examples/*.py`` module is imported by path and its ``main()``
runs with tiny parameters (fewer Monte-Carlo trials, one LLG input
combination, a shorter spectroscopy film) inside a temporary working
directory, so the scripts cannot silently rot as the library evolves
and never litter the repository with output files.  The parametrized
test ids double as the coverage list: adding an example without a
``main()`` entry point fails loudly here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Tiny-parameter overrides keeping the quick lane quick; scripts not
#: listed here are cheap enough to run with their defaults.
TINY_KWARGS = {
    "dispersion_spectroscopy": {
        "length": 0.8e-6,
        "duration": 0.6e-9,
    },
    "llg_crosscheck": {
        "combos": [(1, 0, 0)],
        "dt": 0.2e-12,
    },
    "tmr_voter": {"trials": 4},
    "logic_synthesis": {"n_bits": 2},
}

EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_collected():
    """The glob really sees the example scripts (guards against moves)."""
    assert len(EXAMPLES) >= 10
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # exports land in the sandbox
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, spec.name, module)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"example {name} lacks a main()"
    module.main(**TINY_KWARGS.get(name, {}))
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
    assert "WRONG" not in out, f"example {name} reported a failure"
    assert "MISMATCH" not in out, f"example {name} reported a mismatch"
