"""Tests for repro.physics.dispersion."""

import math

import numpy as np
import pytest

from repro.errors import DispersionError
from repro.materials import FECOB_PMA, PERMALLOY, YIG
from repro.physics.dispersion import (
    BvmswDispersion,
    ExchangeDispersion,
    FvmswDispersion,
    MsswDispersion,
    _f00,
)
from repro.physics.kittel import fmr_frequency_perpendicular


class TestF00:
    def test_zero_limit(self):
        assert _f00(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_small_argument_series(self):
        # F00 ~ kd/2 for small kd.
        assert _f00(1e-4) == pytest.approx(5e-5, rel=1e-3)

    def test_large_argument_limit(self):
        # F00 -> 1 as kd -> infinity.
        assert _f00(100.0) == pytest.approx(1.0 - 1.0 / 100.0, rel=1e-6)

    def test_monotonic_increasing(self):
        kd = np.linspace(0, 10, 200)
        values = _f00(kd)
        assert np.all(np.diff(values) > 0)

    def test_bounded_between_0_and_1(self):
        values = _f00(np.linspace(0, 1000, 500))
        assert np.all(values >= 0)
        assert np.all(values < 1)

    def test_array_and_scalar_agree(self):
        assert _f00(np.array([0.5]))[0] == pytest.approx(_f00(0.5))


class TestFvmsw:
    def setup_method(self):
        self.dispersion = FvmswDispersion(FECOB_PMA, 1e-9)

    def test_band_edge_equals_perpendicular_fmr(self):
        assert self.dispersion.frequency(0.0) == pytest.approx(
            fmr_frequency_perpendicular(FECOB_PMA), rel=1e-9
        )

    def test_band_edge_value(self):
        # ~3.64 GHz for the paper's film.
        assert self.dispersion.frequency(0.0) == pytest.approx(3.64e9, rel=1e-2)

    def test_monotonic_in_k(self):
        ks = np.linspace(0, 5e8, 300)
        freqs = self.dispersion.frequency(ks)
        assert np.all(np.diff(freqs) > 0)

    def test_positive_group_velocity(self):
        # "Forward volume": omega increases with k.
        for k in (1e7, 5e7, 1e8, 3e8):
            assert self.dispersion.group_velocity(k) > 0

    def test_exchange_dominates_at_large_k(self):
        # At large k the FVMSW curve approaches the exchange parabola.
        exchange = ExchangeDispersion(FECOB_PMA, 1e-9)
        k = 5e8
        assert self.dispersion.frequency(k) == pytest.approx(
            exchange.frequency(k), rel=0.05
        )

    def test_relaxation_rate_positive_and_increasing(self):
        rates = [float(self.dispersion.relaxation_rate(k)) for k in (0, 1e8, 3e8)]
        assert all(r > 0 for r in rates)
        assert rates[0] < rates[1] < rates[2]

    def test_relaxation_scales_with_alpha(self):
        lossier = FvmswDispersion(FECOB_PMA.with_(alpha=0.008), 1e-9)
        assert float(lossier.relaxation_rate(1e8)) == pytest.approx(
            2.0 * float(self.dispersion.relaxation_rate(1e8)), rel=1e-9
        )

    def test_non_pma_material_rejected(self):
        with pytest.raises(DispersionError, match="unstable"):
            FvmswDispersion(PERMALLOY, 1e-9).internal_field()

    def test_bias_field_raises_band_edge(self):
        biased = FvmswDispersion(FECOB_PMA, 1e-9, h_ext=1e5)
        assert biased.frequency(0.0) > self.dispersion.frequency(0.0)

    def test_invalid_thickness(self):
        with pytest.raises(DispersionError):
            FvmswDispersion(FECOB_PMA, 0.0)

    def test_array_evaluation(self):
        ks = np.array([1e7, 1e8])
        freqs = self.dispersion.frequency(ks)
        assert freqs.shape == (2,)
        assert freqs[0] == pytest.approx(self.dispersion.frequency(1e7))

    def test_describe_mentions_geometry(self):
        assert "FVMSW" in self.dispersion.describe()


class TestExchangeDispersion:
    def test_parabolic_form(self):
        dispersion = ExchangeDispersion(FECOB_PMA, 1e-9)
        w0 = dispersion.omega(0.0)
        k = 2e8
        expected = w0 + FECOB_PMA.omega_m * FECOB_PMA.lambda_ex * k**2
        assert dispersion.omega(k) == pytest.approx(expected)

    def test_below_fvmsw_at_same_k(self):
        # Dropping the (positive) dipolar term lowers the frequency.
        exchange = ExchangeDispersion(FECOB_PMA, 1e-9)
        fvmsw = FvmswDispersion(FECOB_PMA, 1e-9)
        k = 8e7
        assert exchange.frequency(k) < fvmsw.frequency(k)

    def test_group_velocity_linear_in_k(self):
        dispersion = ExchangeDispersion(FECOB_PMA, 1e-9)
        v1 = dispersion.group_velocity(1e8)
        v2 = dispersion.group_velocity(2e8)
        assert v2 == pytest.approx(2.0 * v1, rel=1e-3)


class TestBvmsw:
    def test_backward_character_at_small_k(self):
        # The defining feature: negative group velocity at small k for a
        # thick enough film.
        dispersion = BvmswDispersion(YIG, 5e-6, h_ext=3e4)
        assert dispersion.group_velocity(1e4) < 0

    def test_band_edge_above_zero(self):
        dispersion = BvmswDispersion(YIG, 100e-9, h_ext=3e4)
        assert dispersion.frequency(0.0) > 0

    def test_needs_positive_internal_field(self):
        with pytest.raises(DispersionError):
            BvmswDispersion(YIG, 100e-9, h_ext=-1e6).internal_field()


class TestMssw:
    def test_above_bvmsw_at_same_k(self):
        # Surface waves run above the backward-volume band.
        mssw = MsswDispersion(YIG, 100e-9, h_ext=3e4)
        bvmsw = BvmswDispersion(YIG, 100e-9, h_ext=3e4)
        k = 1e6
        assert mssw.frequency(k) > bvmsw.frequency(k)

    def test_monotonic_increasing(self):
        mssw = MsswDispersion(YIG, 100e-9, h_ext=3e4)
        ks = np.linspace(1e4, 1e7, 100)
        freqs = mssw.frequency(ks)
        assert np.all(np.diff(freqs) > 0)

    def test_relaxation_rate_positive(self):
        mssw = MsswDispersion(YIG, 100e-9, h_ext=3e4)
        assert float(mssw.relaxation_rate(1e6)) > 0
