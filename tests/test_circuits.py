"""Tests for repro.circuits (netlist, library, synthesis, estimation)."""

from itertools import product

import pytest

from repro.errors import NetlistError
from repro.circuits import (
    CellLibrary,
    CellSpec,
    Netlist,
    circuit_cost,
    default_library,
    full_adder,
    majority_tree,
    parallel_vs_scalar,
    random_netlist,
    ripple_carry_adder,
)
from repro.circuits.synth import evaluate_adder


class TestNetlistConstruction:
    def test_duplicate_node_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_unknown_fanin_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_cell("g", "INV", ("ghost",))

    def test_wrong_arity_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_cell("g", "MAJ3", ("a", "a"))

    def test_unknown_operation_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_cell("g", "NAND9", ("a",))

    def test_const_validation(self):
        netlist = Netlist()
        netlist.add_const("zero", 0)
        with pytest.raises(Exception):
            netlist.add_const("two", 2)

    def test_mark_unknown_output_rejected(self):
        with pytest.raises(NetlistError):
            Netlist().mark_output("nope")

    def test_cycle_rejected(self):
        # A cell cannot feed itself (the only way to build a cycle here).
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_cell("g1", "INV", ("a",))
        with pytest.raises(NetlistError):
            netlist.add_cell("g1b", "INV", ("g1b",))


class TestNetlistEvaluation:
    def test_simple_inverter(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_cell("n", "INV", ("a",))
        netlist.mark_output("n")
        assert netlist.evaluate({"a": 0}) == {"n": 1}
        assert netlist.evaluate({"a": 1}) == {"n": 0}

    def test_missing_input_raises(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_cell("n", "INV", ("a",))
        netlist.mark_output("n")
        with pytest.raises(NetlistError):
            netlist.evaluate({})

    def test_constants(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_const("one", 1)
        netlist.add_const("zero", 0)
        netlist.add_cell("g", "MAJ3", ("a", "one", "zero"))
        netlist.mark_output("g")
        assert netlist.evaluate({"a": 1})["g"] == 1
        assert netlist.evaluate({"a": 0})["g"] == 0

    def test_depth_and_critical_path(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_cell("g1", "INV", ("a",))
        netlist.add_cell("g2", "INV", ("g1",))
        netlist.add_cell("g3", "BUF", ("a",))
        netlist.mark_output("g2")
        netlist.mark_output("g3")
        assert netlist.depth() == 2
        assert netlist.critical_path() == ["a", "g1", "g2"]

    def test_cell_counts(self):
        netlist, _, _ = full_adder()
        counts = netlist.cell_counts()
        assert counts == {"MAJ3": 1, "XOR2": 2}

    def test_inputs_outputs_ordering(self):
        netlist = ripple_carry_adder(2)
        assert netlist.inputs[:2] == ["a0", "a1"]
        assert netlist.outputs[-1].endswith("carry")


class TestTopologyCache:
    def test_levels_of_full_adder(self):
        netlist, total, carry = full_adder()
        levels = netlist.levels()
        assert levels["a"] == 0 and levels["cin"] == 0
        assert levels[carry] == 1 and levels["fa_axb"] == 1
        assert levels[total] == 2

    def test_level_schedule_groups_cells(self):
        netlist = ripple_carry_adder(2)
        schedule = netlist.level_schedule()
        assert len(schedule) == netlist.depth()
        levels = netlist.levels()
        for index, cells in enumerate(schedule, start=1):
            assert all(levels[node.name] == index for node in cells)
        scheduled = {node.name for cells in schedule for node in cells}
        assert scheduled == {node.name for node in netlist.cells()}

    def test_cache_reused_and_invalidated(self):
        netlist, _, _ = full_adder()
        first = netlist.level_schedule()
        assert netlist.level_schedule() is first  # cached
        netlist.add_cell("extra", "INV", ("fa_sum",))
        second = netlist.level_schedule()
        assert second is not first
        assert netlist.levels()["extra"] == 3

    def test_failed_add_cell_keeps_netlist_consistent(self):
        netlist, _, _ = full_adder()
        netlist.topological_order()
        with pytest.raises(NetlistError):
            netlist.add_cell("bad", "NAND9", ("a",))
        assert netlist.depth() == 2

    def test_node_accessor(self):
        netlist, _, _ = full_adder()
        assert netlist.node("fa_carry").kind == "MAJ3"
        with pytest.raises(NetlistError):
            netlist.node("ghost")

    def test_mark_output_keeps_cache_valid(self):
        """Regression: output edits must not touch the topology cache,
        and every output-sensitive query must still see the live list."""
        netlist = ripple_carry_adder(2)
        schedule = netlist.level_schedule()
        order = netlist.topological_order()
        depth = netlist.depth()
        # Register a shallow internal node as a new primary output.
        netlist.mark_output("rca_fa0_axb")
        assert netlist.level_schedule() is schedule  # cache untouched
        assert netlist.topological_order() is order
        assert "rca_fa0_axb" in netlist.outputs
        # Depth/critical path re-read the live output list on top of the
        # cache; a shallow extra output must not shrink them.
        assert netlist.depth() == depth
        assert netlist.levels()["rca_fa0_axb"] < depth
        assert netlist.critical_path()[-1] != "rca_fa0_axb"
        # evaluate/evaluate_batch include the new output immediately.
        assignment = {name: 0 for name in netlist.inputs}
        assert "rca_fa0_axb" in netlist.evaluate(assignment)
        assert "rca_fa0_axb" in netlist.evaluate_batch([assignment])

    def test_mark_output_reregistration_is_idempotent(self):
        netlist, total, carry = full_adder()
        schedule = netlist.level_schedule()
        before = netlist.outputs
        netlist.mark_output(total)  # already registered
        assert netlist.outputs == before  # no duplicate, same order
        assert netlist.level_schedule() is schedule

    def test_inversion_edit_is_an_add_and_invalidates(self):
        """Output-polarity edits go through an INV cell (detector
        placement), which *is* a topology change and must invalidate."""
        netlist, total, carry = full_adder()
        schedule = netlist.level_schedule()
        inverted = netlist.add_cell("ncarry", "INV", (carry,))
        netlist.mark_output(inverted)
        assert netlist.level_schedule() is not schedule
        assert netlist.levels()["ncarry"] == 2
        outputs = netlist.evaluate({"a": 1, "b": 1, "cin": 0})
        assert outputs["ncarry"] == 1 - outputs[carry]


class TestEvaluateBatch:
    def test_matches_scalar_evaluate(self):
        netlist = ripple_carry_adder(2)
        batch = [
            {name: (seed >> i) & 1 for i, name in enumerate(netlist.inputs)}
            for seed in range(16)
        ]
        outputs = netlist.evaluate_batch(batch)
        for index, assignment in enumerate(batch):
            scalar = netlist.evaluate(assignment)
            for name in netlist.outputs:
                assert outputs[name][index] == scalar[name]

    def test_missing_input_raises(self):
        netlist, _, _ = full_adder()
        with pytest.raises(NetlistError, match="cin"):
            netlist.evaluate_batch([{"a": 0, "b": 1}])

    def test_empty_batch_raises(self):
        netlist, _, _ = full_adder()
        with pytest.raises(NetlistError, match="no assignments"):
            netlist.evaluate_batch([])

    def test_bad_bit_rejected(self):
        netlist, _, _ = full_adder()
        with pytest.raises(Exception):
            netlist.evaluate_batch([{"a": 2, "b": 0, "cin": 0}])


class TestSynthesis:
    def test_full_adder_truth_table(self):
        netlist, total, carry = full_adder()
        for a, b, cin in product((0, 1), repeat=3):
            outputs = netlist.evaluate({"a": a, "b": b, "cin": cin})
            assert outputs[total] == (a + b + cin) % 2
            assert outputs[carry] == (a + b + cin) // 2

    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_ripple_adder_exhaustive_small_random_large(self, width):
        netlist = ripple_carry_adder(width)
        if width <= 4:
            pairs = product(range(2**width), repeat=2)
        else:
            import random

            rng = random.Random(0)
            pairs = [
                (rng.randrange(2**width), rng.randrange(2**width))
                for _ in range(25)
            ]
        for a, b in pairs:
            assert evaluate_adder(netlist, a, b, width) == a + b

    def test_ripple_adder_width_validation(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)

    def test_majority_tree_structure(self):
        netlist = majority_tree(9)
        assert netlist.cell_counts() == {"MAJ3": 4}
        assert netlist.depth() == 2

    def test_majority_tree_unanimous(self):
        netlist = majority_tree(9)
        for value in (0, 1):
            outputs = netlist.evaluate({f"x{i}": value for i in range(9)})
            assert list(outputs.values())[0] == value

    def test_majority_tree_power_check(self):
        with pytest.raises(NetlistError):
            majority_tree(6)

    def test_random_netlist_deterministic(self):
        first = random_netlist(7)
        second = random_netlist(7)
        assert first.name == second.name == "rand7"
        assert first.topological_order() == second.topological_order()
        assert first.outputs == second.outputs
        assert [n.fanin for n in first.cells()] == [
            n.fanin for n in second.cells()
        ]
        assignment = {name: 1 for name in first.inputs}
        assert first.evaluate(assignment) == second.evaluate(assignment)

    def test_random_netlist_validation(self):
        with pytest.raises(NetlistError, match="n_outputs"):
            random_netlist(0, n_cells=1, n_outputs=2)


class TestLibrary:
    def test_default_library_cells(self):
        library = default_library()
        assert set(library.names()) == {"MAJ3", "XOR2", "INV", "BUF"}

    def test_inv_is_free(self):
        # SW inversion = detector placement, no transducer cost.
        library = default_library()
        inv = library.get("INV")
        assert inv.area == 0.0 and inv.energy == 0.0

    def test_missing_cell_raises(self):
        library = default_library()
        with pytest.raises(NetlistError):
            library.get("NAND2")

    def test_duplicate_cell_rejected(self):
        with pytest.raises(NetlistError):
            CellLibrary([CellSpec("A", 1, 1, 1), CellSpec("A", 1, 1, 1)])

    def test_negative_cost_rejected(self):
        with pytest.raises(NetlistError):
            CellSpec("A", -1.0, 1.0, 1.0)

    def test_nbit_cells_larger_but_sublinear(self):
        scalar = default_library(1).get("MAJ3")
        parallel = default_library(8).get("MAJ3")
        assert parallel.area > scalar.area
        assert parallel.area < 8 * scalar.area  # the whole point

    def test_physical_arity(self):
        from repro.circuits.library import physical_arity

        assert physical_arity("MAJ3") == 3
        assert physical_arity("XOR2") == 2
        with pytest.raises(NetlistError, match="no physical gate"):
            physical_arity("INV")


class TestEstimation:
    def test_circuit_cost_sums_cells(self):
        netlist, _, _ = full_adder()
        library = CellLibrary(
            [
                CellSpec("MAJ3", 10.0, 1.0, 2.0),
                CellSpec("XOR2", 5.0, 1.0, 1.0),
            ]
        )
        cost = circuit_cost(netlist, library)
        assert cost.area == pytest.approx(10 + 2 * 5)
        assert cost.energy == pytest.approx(2 + 2 * 1)
        assert cost.n_cells == 3
        # Critical path: a -> axb -> sum = two XOR2 cells.
        assert cost.delay == pytest.approx(2.0)

    def test_per_word_division(self):
        netlist, _, _ = full_adder()
        library = CellLibrary(
            [CellSpec("MAJ3", 8.0, 1.0, 8.0), CellSpec("XOR2", 8.0, 1.0, 8.0)]
        )
        cost = circuit_cost(netlist, library)
        per_word = cost.per_word(8)
        assert per_word.area == pytest.approx(cost.area / 8)
        assert per_word.delay == cost.delay
        with pytest.raises(NetlistError):
            cost.per_word(0)

    def test_parallel_vs_scalar_adder(self):
        netlist = ripple_carry_adder(4)
        result = parallel_vs_scalar(netlist, n_words=8)
        # The paper's conclusion, lifted to circuits: big area win,
        # energy parity (same transducers per processed word).
        assert result.area_ratio > 2.0
        assert result.energy_ratio == pytest.approx(1.0, rel=0.3)
        assert result.n_words == 8

    def test_parallel_vs_scalar_validation(self):
        netlist, _, _ = full_adder()
        with pytest.raises(NetlistError):
            parallel_vs_scalar(netlist, n_words=0)
