"""Unit tests for the benchmark snapshot differ (benchmarks/compare_bench).

The differ gates bench-refresh commits, so its failure modes matter:
a snapshot row that exists only in the fresh file -- a bench just
added, or an existing bench re-run under a new compute-backend tag --
must be reported informationally and never crash or gate, and corrupt
rows must degrade to "not comparable" instead of taking the whole
comparison down.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", ROOT / "benchmarks" / "compare_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("compare_bench", module)
    spec.loader.exec_module(module)
    return module


compare_bench = _load()


def _row(words_per_second):
    return {"extra_info": {"words_per_second": words_per_second}}


class TestThroughput:
    def test_words_per_second_preferred(self):
        assert compare_bench.throughput(_row(1000.0)) == (1000.0, "words/s")

    def test_ops_fallback(self):
        assert compare_bench.throughput({"ops": 50.0}) == (50.0, "ops/s")

    def test_mean_fallback(self):
        value, unit = compare_bench.throughput({"mean": 0.25})
        assert (value, unit) == (4.0, "runs/s")

    def test_malformed_records_return_none(self):
        assert compare_bench.throughput(None) == (None, None)
        assert compare_bench.throughput("junk") == (None, None)
        assert compare_bench.throughput({"mean": "fast"}) == (None, None)
        assert compare_bench.throughput({"mean": 0.0}) == (None, None)
        assert compare_bench.throughput(
            {"extra_info": {"words_per_second": None}}
        ) == (None, None)


class TestDiffRecords:
    def test_common_rows_compared_and_gated(self):
        fresh = {"bench_a": _row(500.0), "bench_b": _row(1000.0)}
        baseline = {"bench_a": _row(1000.0), "bench_b": _row(1000.0)}
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 1
        assert any("REGRESSION" in line and "bench_a" in line
                   for line in lines)

    def test_new_backend_tag_rows_informational(self):
        """A fresh snapshot gaining rows for a new backend tag (e.g. a
        float32 variant of an existing bench) must not crash or gate
        when the committed baseline has no matching rows."""
        fresh = {
            "test_packed": _row(1000.0),
            "test_packed_float32": _row(2000.0),
        }
        baseline = {"test_packed": _row(1000.0)}
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0
        new_lines = [line for line in lines if "new bench" in line]
        assert len(new_lines) == 1
        assert "test_packed_float32" in new_lines[0]
        assert "2,000.0 words/s" in new_lines[0]

    def test_removed_rows_reported_not_gated(self):
        lines, regressions = compare_bench.diff_records(
            {}, {"gone": _row(10.0)}, threshold=0.25
        )
        assert regressions == 0
        assert lines == ["  gone: REMOVED (was in baseline)"]

    def test_malformed_baseline_row_tolerated(self):
        fresh = {"bench": _row(100.0)}
        baseline = {"bench": {"extra_info": {"words_per_second": "NaN?"}}}
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0
        assert lines == ["  bench: metrics not comparable"]

    def test_unit_mismatch_not_comparable(self):
        fresh = {"bench": {"ops": 10.0}}
        baseline = {"bench": _row(10.0)}
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0
        assert "not comparable" in lines[0]

    def test_improvement_never_gates(self):
        lines, regressions = compare_bench.diff_records(
            {"bench": _row(4000.0)}, {"bench": _row(1000.0)}, threshold=0.25
        )
        assert regressions == 0
        assert "+300.0%" in lines[0]


def _metrics_row(words_per_second, metrics):
    return {
        "extra_info": {
            "words_per_second": words_per_second,
            "metrics": metrics,
        }
    }


class TestDiffMetrics:
    def test_hit_rate_collapse_warns(self):
        fresh = {
            "bench": _metrics_row(
                1000.0, {"compile_cache.hit_rate": 0.50}
            )
        }
        baseline = {
            "bench": _metrics_row(
                1000.0, {"compile_cache.hit_rate": 0.95}
            )
        }
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0  # warnings never gate
        warnings = [line for line in lines if "WARNING" in line]
        assert len(warnings) == 1
        assert "compile_cache.hit_rate" in warnings[0]
        assert "95.0%" in warnings[0] and "50.0%" in warnings[0]

    def test_small_hit_rate_drop_silent(self):
        fresh = {
            "bench": _metrics_row(
                1000.0, {"compile_cache.hit_rate": 0.90}
            )
        }
        baseline = {
            "bench": _metrics_row(
                1000.0, {"compile_cache.hit_rate": 0.95}
            )
        }
        lines, _ = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert not any("WARNING" in line for line in lines)

    def test_hit_rate_improvement_silent(self):
        fresh = {
            "bench": _metrics_row(1000.0, {"c.hit_rate": 1.0})
        }
        baseline = {
            "bench": _metrics_row(1000.0, {"c.hit_rate": 0.5})
        }
        lines, _ = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert not any("WARNING" in line for line in lines)

    def test_non_rate_metrics_ignored(self):
        fresh = {
            "bench": _metrics_row(
                1000.0, {"circuit.level_gemms": 4, "llg.steps": 100}
            )
        }
        baseline = {
            "bench": _metrics_row(
                1000.0, {"circuit.level_gemms": 400, "llg.steps": 1}
            )
        }
        lines, _ = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert not any("WARNING" in line for line in lines)

    def test_missing_or_malformed_metrics_tolerated(self):
        assert compare_bench.bench_metrics(None) == {}
        assert compare_bench.bench_metrics({"extra_info": "junk"}) == {}
        assert compare_bench.bench_metrics(
            {"extra_info": {"metrics": [1, 2]}}
        ) == {}
        fresh = {
            "bench": _metrics_row(1000.0, {"c.hit_rate": "broken"})
        }
        baseline = {
            "bench": _metrics_row(1000.0, {"c.hit_rate": 0.9})
        }
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0
        assert not any("WARNING" in line for line in lines)

    def test_warning_rides_not_comparable_rows(self):
        """Hit-rate collapses surface even when throughput can't diff."""
        fresh = {
            "bench": {
                "extra_info": {
                    "words_per_second": None,
                    "metrics": {"c.hit_rate": 0.1},
                }
            }
        }
        baseline = {
            "bench": _metrics_row(1000.0, {"c.hit_rate": 0.9})
        }
        lines, regressions = compare_bench.diff_records(
            fresh, baseline, threshold=0.25
        )
        assert regressions == 0
        assert any("WARNING" in line for line in lines)
