"""Tests for repro.core.layout."""

import math

import pytest

from repro.errors import LayoutError
from repro.core.frequency_plan import FrequencyPlan
from repro.core.layout import (
    PAPER_BYTE_DISTANCES,
    PAPER_BYTE_MULTIPLIERS,
    InlineGateLayout,
    TransducerSpec,
)
from repro.units import GHZ
from repro.waveguide import Waveguide


class TestTransducerSpec:
    def test_paper_defaults(self):
        spec = TransducerSpec()
        assert spec.length == 10e-9
        assert spec.width == 50e-9
        assert spec.min_gap == 1e-9
        assert spec.pitch == pytest.approx(11e-9)
        assert spec.area == pytest.approx(500e-18)

    def test_validation(self):
        with pytest.raises(LayoutError):
            TransducerSpec(length=0.0)
        with pytest.raises(LayoutError):
            TransducerSpec(width=-1.0)
        with pytest.raises(LayoutError):
            TransducerSpec(min_gap=-1e-9)


class TestPaperByteLayout:
    def test_uses_paper_multipliers(self, paper_layout):
        assert paper_layout.multipliers == list(PAPER_BYTE_MULTIPLIERS)

    def test_validates(self, paper_layout):
        assert paper_layout.validate() is paper_layout

    def test_distances_match_paper_within_3_percent(self, paper_layout):
        for measured, paper in zip(paper_layout.distances, PAPER_BYTE_DISTANCES):
            assert measured == pytest.approx(paper, rel=0.03)

    def test_source_counts(self, paper_layout):
        assert paper_layout.n_sources == 24
        assert paper_layout.n_detectors == 8
        assert len(paper_layout.source_positions) == 8
        assert all(len(row) == 3 for row in paper_layout.source_positions)

    def test_same_channel_spacing_is_n_lambda(self, paper_layout):
        for channel, row in enumerate(paper_layout.source_positions):
            lam = paper_layout.wavelengths[channel]
            n = paper_layout.multipliers[channel]
            for a, b in zip(row, row[1:]):
                assert (b - a) == pytest.approx(n * lam, rel=1e-12)

    def test_detector_behind_all_sources(self, paper_layout):
        last_source = max(max(row) for row in paper_layout.source_positions)
        for position in paper_layout.detector_positions:
            assert position > last_source

    def test_detector_at_integer_wavelength(self, paper_layout):
        for channel in range(8):
            distance = paper_layout.detector_distance(channel)
            lam = paper_layout.wavelengths[channel]
            ratio = distance / lam
            assert abs(ratio - round(ratio)) < 1e-9

    def test_minimum_pitch_everywhere(self, paper_layout):
        centres = paper_layout.all_transducer_positions()
        pitch = paper_layout.transducer.pitch
        for a, b in zip(centres, centres[1:]):
            assert (b - a) >= pitch - 1e-12

    def test_area_in_paper_ballpark(self, paper_layout):
        # Paper: 0.0279 um^2.  Accept the same order with our layout.
        area_um2 = paper_layout.area * 1e12
        assert 0.02 < area_um2 < 0.045

    def test_describe_lists_channels(self, paper_layout):
        text = paper_layout.describe()
        assert "ch0" in text and "ch7" in text


class TestAutoLayout:
    def test_auto_multipliers_satisfy_constraints(self, paper_waveguide):
        plan = FrequencyPlan.paper_byte_plan()
        layout = InlineGateLayout(paper_waveguide, plan, n_inputs=3)
        layout.validate()
        assert all(m >= 1 for m in layout.multipliers)

    def test_single_channel_minimal(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        layout = InlineGateLayout(paper_waveguide, plan, n_inputs=3)
        # lambda = 81 nm > pitch, so the minimal multiplier is 1.
        assert layout.multipliers == [1]

    def test_small_wavelength_forces_larger_multiplier(self):
        # With a 60 nm transducer pitch and lambda(80 GHz) ~ 22 nm the
        # multiplier must be at least ceil(61/22.4) = 3.
        waveguide = Waveguide()
        plan = FrequencyPlan([80 * GHZ])
        spec = TransducerSpec(length=60e-9, min_gap=1e-9)
        layout = InlineGateLayout(
            waveguide, plan, n_inputs=3, transducer=spec
        )
        assert layout.multipliers[0] >= 3
        layout.validate()

    def test_more_inputs_longer_gate(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        short = InlineGateLayout(paper_waveguide, plan, n_inputs=3)
        long = InlineGateLayout(paper_waveguide, plan, n_inputs=7)
        assert long.total_length > short.total_length


class TestLayoutOptions:
    def test_explicit_multiplier_length_mismatch(self, paper_waveguide):
        plan = FrequencyPlan.paper_byte_plan()
        with pytest.raises(LayoutError):
            InlineGateLayout(
                paper_waveguide, plan, n_inputs=3, multipliers=[2, 2]
            )

    def test_explicit_multiplier_below_one(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        with pytest.raises(LayoutError):
            InlineGateLayout(
                paper_waveguide, plan, n_inputs=3, multipliers=[0]
            )

    def test_invalid_n_inputs(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        with pytest.raises(LayoutError):
            InlineGateLayout(paper_waveguide, plan, n_inputs=0)

    def test_inverted_outputs_at_half_integer(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ, 20 * GHZ])
        layout = InlineGateLayout(
            paper_waveguide,
            plan,
            n_inputs=3,
            inverted_outputs=[True, False],
        )
        distance = layout.detector_distance(0)
        lam = layout.wavelengths[0]
        ratio = distance / lam
        # Odd multiple of half a wavelength: ratio - 0.5 is an integer.
        assert abs((ratio - 0.5) - round(ratio - 0.5)) < 1e-9
        # Channel 1 stays integer.
        ratio1 = layout.detector_distance(1) / layout.wavelengths[1]
        assert abs(ratio1 - round(ratio1)) < 1e-9

    def test_inverted_outputs_wrong_length(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        with pytest.raises(LayoutError):
            InlineGateLayout(
                paper_waveguide, plan, inverted_outputs=[True, False]
            )

    def test_ordered_mode_preserves_channel_order(self, paper_waveguide):
        plan = FrequencyPlan.paper_byte_plan()
        layout = InlineGateLayout(
            paper_waveguide,
            plan,
            n_inputs=3,
            multipliers=list(PAPER_BYTE_MULTIPLIERS),
            ordered=True,
        )
        starts = [row[0] for row in layout.source_positions]
        assert all(a < b for a, b in zip(starts, starts[1:]))
        layout.validate()

    def test_ordered_no_longer_than_needed(self, paper_waveguide):
        # Dense (default) packing is never longer than ordered packing.
        plan = FrequencyPlan.paper_byte_plan()
        dense = InlineGateLayout(
            paper_waveguide, plan, multipliers=list(PAPER_BYTE_MULTIPLIERS)
        )
        ordered = InlineGateLayout(
            paper_waveguide,
            plan,
            multipliers=list(PAPER_BYTE_MULTIPLIERS),
            ordered=True,
        )
        assert dense.total_length <= ordered.total_length + 1e-12

    def test_validate_catches_corruption(self, paper_waveguide):
        plan = FrequencyPlan([10 * GHZ])
        layout = InlineGateLayout(paper_waveguide, plan, n_inputs=3)
        layout.source_positions[0][1] = layout.source_positions[0][0] + 1e-9
        with pytest.raises(LayoutError):
            layout.validate()
