"""Tests for the Newell tensor and the demagnetising field terms."""

import numpy as np
import pytest

from repro.materials import FECOB_PMA, PERMALLOY
from repro.mm import DemagField, Mesh, State, ThinFilmDemagField
from repro.mm.fields.newell import (
    demag_tensor,
    newell_f,
    newell_g,
    nxx,
    nxy,
    nxz,
    nyy,
    nyz,
    nzz,
    self_demag_factors,
)


class TestNewellFunctions:
    def test_f_even_in_all_arguments(self):
        value = newell_f(1.0, 2.0, 3.0)
        assert newell_f(-1.0, 2.0, 3.0) == pytest.approx(value)
        assert newell_f(1.0, -2.0, 3.0) == pytest.approx(value)
        assert newell_f(1.0, 2.0, -3.0) == pytest.approx(value)

    def test_g_odd_in_x_and_y_even_in_z(self):
        value = newell_g(1.0, 2.0, 3.0)
        assert newell_g(-1.0, 2.0, 3.0) == pytest.approx(-value)
        assert newell_g(1.0, -2.0, 3.0) == pytest.approx(-value)
        assert newell_g(1.0, 2.0, -3.0) == pytest.approx(value)

    def test_f_at_origin_is_zero(self):
        assert newell_f(0.0, 0.0, 0.0) == pytest.approx(0.0)

    def test_vectorised(self):
        x = np.array([1.0, 2.0])
        out = newell_f(x, 1.0, 1.0)
        assert out.shape == (2,)


class TestSelfDemag:
    def test_cube_is_one_third(self):
        factors = self_demag_factors(2e-9, 2e-9, 2e-9)
        for factor in factors:
            assert factor == pytest.approx(1.0 / 3.0, rel=1e-10)

    def test_trace_is_one(self):
        factors = self_demag_factors(5e-9, 3e-9, 1e-9)
        assert sum(factors) == pytest.approx(1.0, rel=1e-10)

    def test_thin_film_cell_dominated_by_nzz(self):
        nx_f, ny_f, nz_f = self_demag_factors(50e-9, 50e-9, 1e-9)
        assert nz_f > 0.9
        assert nx_f == pytest.approx(ny_f)

    def test_elongated_cell_small_along_length(self):
        nx_f, ny_f, nz_f = self_demag_factors(100e-9, 5e-9, 5e-9)
        assert nx_f < ny_f
        assert ny_f == pytest.approx(nz_f)


class TestTensorSymmetries:
    def test_diagonal_even_in_displacement(self):
        cell = (2e-9, 2e-9, 1e-9)
        assert nxx(4e-9, 2e-9, 0.0, *cell) == pytest.approx(
            nxx(-4e-9, 2e-9, 0.0, *cell)
        )

    def test_permutation_identities(self):
        cell = (2e-9, 3e-9, 4e-9)
        x, y, z = 5e-9, 7e-9, 9e-9
        assert nyy(x, y, z, *cell) == pytest.approx(
            nxx(y, x, z, cell[1], cell[0], cell[2])
        )
        assert nzz(x, y, z, *cell) == pytest.approx(
            nxx(z, y, x, cell[2], cell[1], cell[0])
        )
        assert nxz(x, y, z, *cell) == pytest.approx(
            nxy(x, z, y, cell[0], cell[2], cell[1])
        )
        assert nyz(x, y, z, *cell) == pytest.approx(
            nxy(y, z, x, cell[1], cell[2], cell[0])
        )

    def test_far_field_dipole_limit(self):
        # Two cells far apart along x: Nxx -> -2*V/(4*pi*r^3) (dipole).
        d = 2e-9
        r = 200e-9
        v = d**3
        expected = -2.0 * v / (4 * np.pi * r**3)
        assert nxx(r, 0.0, 0.0, d, d, d) == pytest.approx(expected, rel=1e-3)

    def test_off_diagonal_vanishes_on_axis(self):
        d = 2e-9
        assert nxy(10e-9, 0.0, 0.0, d, d, d) == pytest.approx(0.0, abs=1e-12)

    def test_tensor_trace_away_from_origin_zero(self):
        # Outside the source cell the demag tensor is traceless.
        d = 2e-9
        x, y, z = 8e-9, 6e-9, 4e-9
        trace = (
            nxx(x, y, z, d, d, d)
            + nyy(x, y, z, d, d, d)
            + nzz(x, y, z, d, d, d)
        )
        assert trace == pytest.approx(0.0, abs=1e-12)


class TestDemagTensorAssembly:
    def test_components_and_shape(self):
        mesh = Mesh(4, 3, 1, 2e-9, 2e-9, 1e-9)
        tensor = demag_tensor(mesh)
        assert set(tensor) == {"xx", "yy", "zz", "xy", "xz", "yz"}
        assert tensor["xx"].shape == (8, 6, 1)

    def test_origin_entry_is_self_term(self):
        mesh = Mesh(4, 3, 2, 2e-9, 2e-9, 1e-9)
        tensor = demag_tensor(mesh)
        nx_f, ny_f, nz_f = self_demag_factors(2e-9, 2e-9, 1e-9)
        assert tensor["xx"][0, 0, 0] == pytest.approx(nx_f)
        assert tensor["zz"][0, 0, 0] == pytest.approx(nz_f)


class TestDemagField:
    def test_large_thin_film_approaches_minus_ms(self):
        # A wide ultrathin film magnetised out of plane: H_z -> -Ms in
        # the interior (demag factor ~1).
        mesh = Mesh(32, 32, 1, 5e-9, 5e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        h = DemagField(mesh).field(state)
        centre = h[16, 16, 0]
        assert centre[2] == pytest.approx(-FECOB_PMA.ms, rel=0.05)
        assert abs(centre[0]) < 0.01 * FECOB_PMA.ms

    def test_in_plane_film_nearly_zero_field(self):
        mesh = Mesh(32, 32, 1, 5e-9, 5e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(1, 0, 0))
        h = DemagField(mesh).field(state)
        assert abs(h[16, 16, 0, 0]) < 0.05 * PERMALLOY.ms

    def test_cube_macrospin_field(self):
        # Single cubic cell: H = -Ms/3 along m.
        mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(0, 1, 0))
        h = DemagField(mesh).field(state)
        assert h[0, 0, 0, 1] == pytest.approx(-PERMALLOY.ms / 3.0, rel=1e-9)

    def test_energy_positive_for_uniform_state(self):
        mesh = Mesh(8, 8, 1, 5e-9, 5e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        assert DemagField(mesh).energy(state) > 0

    def test_mesh_mismatch_rejected(self):
        mesh_a = Mesh(4, 4, 1, 2e-9, 2e-9, 1e-9)
        mesh_b = Mesh(8, 4, 1, 2e-9, 2e-9, 1e-9)
        term = DemagField(mesh_a)
        state = State.uniform(mesh_b, FECOB_PMA)
        with pytest.raises(ValueError):
            term.field(state)

    def test_cell_geometry_mismatch_rejected(self):
        # Same shape, different cell size: the precomputed Newell tensor
        # encodes dx/dy/dz, so this must be rejected, not silently
        # convolved against the wrong tensor.
        mesh_a = Mesh(4, 4, 1, 2e-9, 2e-9, 1e-9)
        mesh_b = Mesh(4, 4, 1, 5e-9, 2e-9, 1e-9)
        term = DemagField(mesh_a)
        state = State.uniform(mesh_b, FECOB_PMA)
        with pytest.raises(ValueError, match="cell"):
            term.field(state)
        # Both geometries appear in the message so the mismatch is
        # diagnosable from the traceback alone.
        with pytest.raises(ValueError, match="5e-09"):
            term.field(state)

    def test_matches_thin_film_approximation(self):
        # For a laterally large ultrathin film the full solver and the
        # local N_z=1 approximation agree in the interior.
        mesh = Mesh(48, 48, 1, 5e-9, 5e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        full = DemagField(mesh).field(state)
        local = ThinFilmDemagField().field(state)
        np.testing.assert_allclose(
            full[24, 24, 0],
            local[24, 24, 0],
            rtol=0.05,
            atol=0.01 * FECOB_PMA.ms,
        )


class TestThinFilmDemag:
    def test_default_z_only(self):
        mesh = Mesh(2, 2, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, FECOB_PMA)
        h = ThinFilmDemagField().field(state)
        np.testing.assert_allclose(h[..., 2], -FECOB_PMA.ms)
        np.testing.assert_allclose(h[..., 0], 0.0)

    def test_custom_factors(self):
        mesh = Mesh(2, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(1, 0, 0))
        h = ThinFilmDemagField(factors=(0.5, 0.25, 0.25)).field(state)
        assert h[0, 0, 0, 0] == pytest.approx(-0.5 * PERMALLOY.ms)

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            ThinFilmDemagField(factors=(1.0, 0.0))
        with pytest.raises(ValueError):
            ThinFilmDemagField(factors=(-0.1, 0.5, 0.6))

    def test_factor_sum_clearly_unphysical_rejected(self):
        # The demag tensor's trace is 1; a zero or wildly large sum is a
        # transposed/typo'd tuple, not a physical shape.
        with pytest.raises(ValueError, match="sum"):
            ThinFilmDemagField(factors=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="sum"):
            ThinFilmDemagField(factors=(1.0, 1.0, 1.0))

    def test_factor_sum_mild_deviation_warns(self):
        with pytest.warns(UserWarning, match="sum to"):
            term = ThinFilmDemagField(factors=(0.0, 0.0, 0.5))
        assert term.factors == (0.0, 0.0, 0.5)

    def test_factor_sum_of_one_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ThinFilmDemagField(factors=(0.5, 0.25, 0.25))
            ThinFilmDemagField()
