"""Tests for repro.circuits.engine: netlists on batched spin-wave gates.

Three equivalence ladders pin the engine, mirroring the
``tests/test_phasor_equivalence`` pattern (the scalar path is always the
ground truth):

* Boolean -- engine outputs equal ``Netlist.evaluate`` /
  ``evaluate_batch`` exactly, over all ``2**n`` inputs for the
  synthesized adders and over randomized DAGs;
* cascade -- on linear pipelines the engine's per-cell phasor decodes
  equal :class:`~repro.core.cascade.GateCascade` stage results to
  <= 1e-12;
* scalar -- batched execution (faults and noise included) equals the
  per-cell ``run_phasor`` loop (:meth:`CircuitEngine.run_scalar`).
"""

import math
import random
from itertools import product

import numpy as np
import pytest

from repro.circuits import (
    CellFault,
    CircuitEngine,
    Netlist,
    full_adder,
    majority_tree,
    physical_gate,
    random_netlist,
    ripple_carry_adder,
)
from repro.core.cascade import GateCascade
from repro.core.faults import FaultySimulator, TransducerFault
from repro.core.simulate import GateSimulator
from repro.errors import NetlistError, SimulationError
from repro.waveguide import NoiseModel, Waveguide
from repro.waveguide.linear_model import LinearWaveguideModel

TOL = 1e-12


def exhaustive_batch(netlist):
    """All 2^n primary-input assignments of a netlist."""
    inputs = netlist.inputs
    return [
        dict(zip(inputs, bits))
        for bits in product((0, 1), repeat=len(inputs))
    ]


def assert_margins_equal(result, reference):
    """Batched CircuitRunResult pinned to the scalar reference."""
    assert result.outputs == reference.outputs
    assert result.failed == reference.failed
    assert set(result.cells) == set(reference.cells)
    for name, record in result.cells.items():
        ref = reference.cells[name]
        assert record.bits == ref.bits
        if record.margins is None:
            assert ref.margins is None
            continue
        np.testing.assert_allclose(
            record.margins, ref.margins, rtol=TOL, atol=TOL
        )
        np.testing.assert_allclose(
            record.amplitudes, ref.amplitudes, rtol=TOL, atol=TOL
        )


# ----------------------------------------------------------------------
# Boolean equivalence
# ----------------------------------------------------------------------
class TestBooleanEquivalence:
    def test_full_adder_exhaustive(self):
        netlist, total, carry = full_adder()
        # n_bits=3 does not divide the 8 patterns: the padding path runs.
        engine = CircuitEngine(netlist, n_bits=3)
        batch = exhaustive_batch(netlist)
        result = engine.run(batch)
        assert result.correct
        assert result.outputs == netlist.evaluate_batch(batch)
        for index, assignment in enumerate(batch):
            scalar = netlist.evaluate(assignment)
            for name in netlist.outputs:
                assert result.outputs[name][index] == scalar[name]

    def test_ripple_carry_adder_exhaustive(self):
        netlist = ripple_carry_adder(4)
        engine = CircuitEngine(netlist, n_bits=8)
        batch = exhaustive_batch(netlist)
        assert len(batch) == 256
        result = engine.run(batch)
        assert result.correct
        assert result.outputs == netlist.evaluate_batch(batch)
        # Decode the physics back to arithmetic on a few entries.
        for index in (0, 77, 200, 255):
            a = sum(batch[index][f"a{i}"] << i for i in range(4))
            b = sum(batch[index][f"b{i}"] << i for i in range(4))
            total = sum(
                result.outputs[f"rca_fa{i}_sum"][index] << i for i in range(4)
            )
            total |= result.outputs[netlist.outputs[-1]][index] << 4
            assert total == a + b

    def test_majority_tree(self):
        netlist = majority_tree(9)
        engine = CircuitEngine(netlist, n_bits=4)
        rng = random.Random(5)
        batch = [
            {f"x{i}": rng.randint(0, 1) for i in range(9)} for _ in range(20)
        ]
        result = engine.run(batch)
        assert result.correct
        assert result.outputs == netlist.evaluate_batch(batch)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_dags(self, seed):
        netlist = random_netlist(seed)
        engine = CircuitEngine(netlist, n_bits=4)
        rng = random.Random(100 + seed)
        batch = [
            {name: rng.randint(0, 1) for name in netlist.inputs}
            for _ in range(10)
        ]
        result = engine.run(batch)
        assert result.correct
        assert result.outputs == netlist.evaluate_batch(batch)

    def test_per_level_margins_reported(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        result = engine.run(exhaustive_batch(netlist))
        assert len(result.levels) == netlist.depth()
        for report in result.levels:
            assert report.n_physical > 0
            assert report.min_margin > 0
        assert result.min_margin == min(r.min_margin for r in result.levels)

    def test_netlist_grown_after_compilation_is_picked_up(self):
        netlist, total, carry = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        engine.run([{"a": 1, "b": 1, "cin": 0}])
        netlist.add_cell("ncarry", "INV", (carry,))
        netlist.mark_output("ncarry")
        result = engine.run([{"a": 1, "b": 1, "cin": 0}])
        assert result.correct
        assert result.outputs["ncarry"] == [0]

    def test_output_registered_after_compilation_without_recompile(self):
        """mark_output alone must not invalidate the cached schedule --
        the engine keeps its compiled state yet reports the new output."""
        netlist, total, carry = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        engine.run([{"a": 1, "b": 1, "cin": 0}])
        schedule = engine.schedule
        netlist.mark_output("fa_axb")  # an existing internal cell
        result = engine.run([{"a": 1, "b": 1, "cin": 0}])
        assert engine.schedule is schedule  # no recompilation happened
        assert result.correct
        assert result.outputs["fa_axb"] == [0]
        assert set(result.outputs) == {"fa_sum", "fa_carry", "fa_axb"}

    def test_missing_input_raises(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        with pytest.raises(NetlistError, match="cin"):
            engine.run([{"a": 0, "b": 1}])

    def test_empty_batch_raises(self):
        netlist, _, _ = full_adder()
        with pytest.raises(NetlistError, match="no assignments"):
            CircuitEngine(netlist, n_bits=2).run([])

    def test_virtual_only_circuit_needs_no_physics(self):
        netlist = Netlist("wires")
        netlist.add_input("a")
        netlist.add_cell("n1", "INV", ("a",))
        netlist.add_cell("n2", "BUF", ("n1",))
        netlist.mark_output("n2")
        engine = CircuitEngine(netlist, n_bits=4)
        result = engine.run([{"a": 0}, {"a": 1}, {"a": 1}])
        assert result.outputs["n2"] == [1, 0, 0]
        assert engine.n_physical_cells == 0
        assert result.min_margin is None
        assert engine._model is None  # no gate was ever laid out


# ----------------------------------------------------------------------
# Cascade equivalence (linear pipelines)
# ----------------------------------------------------------------------
class TestCascadeEquivalence:
    def _linear_pipeline(self, n_bits=2):
        netlist = Netlist("pipe")
        for j in range(5):
            netlist.add_input(f"w{j}")
        netlist.add_cell("s1", "MAJ3", ("w0", "w1", "w2"))
        netlist.add_cell("s2", "MAJ3", ("s1", "w3", "w4"))
        netlist.mark_output("s2")
        engine = CircuitEngine(netlist, n_bits=n_bits)
        gate = engine.gate_for("MAJ3")
        cascade = GateCascade(
            [gate, gate], [["stage:0", "primary:3", "primary:4"]]
        )
        return netlist, engine, cascade

    def test_phasor_equivalence_all_inputs(self):
        n_bits = 2
        netlist, engine, cascade = self._linear_pipeline(n_bits)
        for bits in product((0, 1), repeat=5):
            words = [[b, 1 - b] for b in bits]
            final, stages = cascade.run(words)
            batch = [
                {f"w{j}": words[j][channel] for j in range(5)}
                for channel in range(n_bits)
            ]
            result = engine.run(batch)
            assert result.outputs["s2"] == final
            for cell, stage in zip(("s1", "s2"), stages):
                record = result.cells[cell]
                assert record.bits == stage.decoded
                assert min(record.margins) == pytest.approx(
                    stage.min_margin, rel=TOL, abs=TOL
                )
                np.testing.assert_allclose(
                    record.amplitudes, stage.amplitudes, rtol=TOL, atol=TOL
                )


# ----------------------------------------------------------------------
# Batched-vs-scalar equivalence
# ----------------------------------------------------------------------
class TestScalarEquivalence:
    def test_nominal(self):
        netlist = ripple_carry_adder(2)
        engine = CircuitEngine(netlist, n_bits=4)
        batch = exhaustive_batch(netlist)
        assert_margins_equal(engine.run(batch), engine.run_scalar(batch))

    def test_with_noise(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=4)
        batch = exhaustive_batch(netlist)
        noise = NoiseModel(
            amplitude_sigma=0.05, phase_sigma=0.1, seed=23
        )
        batched = engine.run(batch, noise=noise, strict=False)
        scalar = engine.run_scalar(batch, noise=noise, strict=False)
        assert_margins_equal(batched, scalar)

    def test_with_placement_noise_falls_back(self):
        """Position noise breaks shared geometry; results still pin."""
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)[:4]
        noise = NoiseModel(position_sigma=1e-9, seed=3)
        batched = engine.run(batch, noise=noise, strict=False)
        scalar = engine.run_scalar(batch, noise=noise, strict=False)
        assert_margins_equal(batched, scalar)

    @pytest.mark.parametrize(
        "kind", ["dead-source", "stuck-phase-0", "stuck-phase-1", "weak-source"]
    )
    def test_with_fault(self, kind):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        fault = CellFault(
            "fa_carry", TransducerFault(kind, channel=1, input_index=2)
        )
        batched = engine.run(batch, faults=[fault], strict=False)
        scalar = engine.run_scalar(batch, faults=[fault], strict=False)
        assert_margins_equal(batched, scalar)


# ----------------------------------------------------------------------
# Time-domain (trace) circuit execution
# ----------------------------------------------------------------------
class TestTraceMode:
    def test_full_adder_trace_correct_with_margins(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        result = engine.run_trace_batch(batch)
        assert result.mode == "trace"
        assert result.correct
        assert result.outputs == netlist.evaluate_batch(batch)
        assert len(result.levels) == netlist.depth()
        for report in result.levels:
            assert report.min_margin > 0

    def test_trace_pinned_to_scalar_with_noise(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        noise = NoiseModel(amplitude_sigma=0.05, phase_sigma=0.1, seed=23)
        batched = engine.run_trace_batch(batch, noise=noise, strict=False)
        scalar = engine.run_scalar(
            batch, noise=noise, strict=False, mode="trace"
        )
        assert scalar.mode == "trace"
        assert_margins_equal(batched, scalar)

    def test_trace_noise_on_traces_stays_vectorised_and_pins(self):
        """``trace_sigma > 0`` rides the batched lock-in (ROADMAP PR 4
        follow-up (b)): per-level decode no longer drops to the scalar
        per-entry measurement, yet pins to it at <= 1e-12."""
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)[:4]
        noise = NoiseModel(trace_sigma=0.03, phase_sigma=0.05, seed=31)
        batched = engine.run_trace_batch(batch, noise=noise, strict=False)
        scalar = engine.run_scalar(
            batch, noise=noise, strict=False, mode="trace"
        )
        assert_margins_equal(batched, scalar)

    def test_trace_placement_noise_falls_back_and_pins(self):
        """Per-entry position jitter takes the per-source trace path."""
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)[:4]
        noise = NoiseModel(position_sigma=1e-9, seed=3)
        batched = engine.run_trace_batch(batch, noise=noise, strict=False)
        scalar = engine.run_scalar(
            batch, noise=noise, strict=False, mode="trace"
        )
        assert_margins_equal(batched, scalar)

    def test_trace_fault_pinned_to_scalar(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        # a stuck at 1 on channel 1: odd entries with a = 0 decode wrong.
        fault = CellFault(
            "fa_carry",
            TransducerFault("stuck-phase-1", channel=1, input_index=0),
        )
        batched = engine.run_trace_batch(batch, faults=[fault], strict=False)
        scalar = engine.run_scalar(
            batch, faults=[fault], strict=False, mode="trace"
        )
        assert_margins_equal(batched, scalar)
        assert batched.word_errors > 0

    def test_trace_agrees_with_phasor_decodes(self):
        netlist = ripple_carry_adder(2)
        engine = CircuitEngine(netlist, n_bits=4)
        batch = exhaustive_batch(netlist)[:8]
        trace = engine.run_trace_batch(batch)
        phasor = engine.run(batch)
        assert trace.outputs == phasor.outputs
        for name in trace.cells:
            assert trace.cells[name].bits == phasor.cells[name].bits

    def test_unknown_mode_rejected(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        with pytest.raises(NetlistError, match="unknown execution mode"):
            engine.run([{"a": 0, "b": 0, "cin": 0}], mode="waveform")
        with pytest.raises(NetlistError, match="unknown execution mode"):
            engine.run_scalar([{"a": 0, "b": 0, "cin": 0}], mode="waveform")

    def test_trace_basis_cache_reused_across_runs(self):
        """Repeated trace runs reuse the memoised carrier bases."""
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)[:2]
        engine.run_trace_batch(batch)
        model = engine.model()
        cached = len(model._basis_cache)
        assert cached > 0
        engine.run_trace_batch(batch)
        engine.run_trace_batch(
            batch, noise=NoiseModel(phase_sigma=0.1, seed=5)
        )  # amplitude/phase noise keeps the nominal geometry
        assert len(model._basis_cache) == cached
        for basis_sin, basis_cos in model._basis_cache.values():
            assert not basis_sin.flags.writeable
            assert not basis_cos.flags.writeable


# ----------------------------------------------------------------------
# Fault and noise behaviour
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_stuck_fault_propagates_through_carry_chain(self):
        netlist = ripple_carry_adder(2)
        engine = CircuitEngine(netlist, n_bits=4)
        batch = exhaustive_batch(netlist)
        # a0 stuck at logic 1 on channel 2; channel 2 carries entries
        # 2, 6, 10, 14, whose b0 = 1, so MAJ(a0, b0, 0) flips whenever
        # the true a0 is 0 -- and the wrong carry corrupts fa1's sum.
        fault = CellFault(
            "rca_fa0_carry",
            TransducerFault("stuck-phase-1", channel=2, input_index=0),
        )
        result = engine.run(batch, faults=[fault], strict=False)
        assert result.word_errors > 0
        for index in range(result.n_entries):
            mismatch = any(
                result.outputs[o][index] != result.expected[o][index]
                for o in result.outputs
            )
            # Only channel-2 instances may err, and the carry error must
            # reach downstream outputs for entries with a0 = 0.
            if mismatch:
                assert index % engine.n_bits == 2
        assert result.outputs["rca_fa1_sum"][2] != result.expected[
            "rca_fa1_sum"
        ][2]

    def test_weak_source_invisible_to_logic(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        fault = CellFault(
            "fa_carry",
            TransducerFault("weak-source", channel=0, input_index=1),
        )
        result = engine.run(batch, faults=[fault], strict=False)
        assert result.word_errors == 0

    def test_multi_fault_distinct_cells(self):
        """Fault lists across distinct cells compose and stay pinned."""
        netlist = ripple_carry_adder(2)
        engine = CircuitEngine(netlist, n_bits=4)
        batch = exhaustive_batch(netlist)
        faults = [
            CellFault(
                "rca_fa0_carry",
                TransducerFault("stuck-phase-1", channel=2, input_index=0),
            ),
            CellFault(
                "rca_fa1_axb",
                TransducerFault("stuck-phase-1", channel=1, input_index=0),
            ),
        ]
        batched = engine.run(batch, faults=faults, strict=False)
        scalar = engine.run_scalar(batch, faults=faults, strict=False)
        assert_margins_equal(batched, scalar)
        assert batched.faults == faults
        # The faults live on different data-parallel channels, so each
        # entry sees at most one of them: the combined error set is
        # exactly the union of the single-fault error sets.
        single_errors = set()
        for fault in faults:
            single = engine.run(batch, faults=[fault], strict=False)
            for i in range(single.n_entries):
                if any(
                    single.outputs[o][i] != single.expected[o][i]
                    for o in single.outputs
                ):
                    single_errors.add(i)
        double_errors = {
            i
            for i in range(batched.n_entries)
            if any(
                batched.outputs[o][i] != batched.expected[o][i]
                for o in batched.outputs
            )
        }
        assert double_errors == single_errors
        assert {i % engine.n_bits for i in double_errors} == {1, 2}

    def test_multi_fault_trace_mode_pinned(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)
        faults = [
            CellFault(
                "fa_carry",
                TransducerFault("stuck-phase-1", channel=0, input_index=0),
            ),
            CellFault(
                "fa_axb",
                TransducerFault("dead-source", channel=1, input_index=1),
            ),
        ]
        batched = engine.run_trace_batch(batch, faults=faults, strict=False)
        scalar = engine.run_scalar(
            batch, faults=faults, strict=False, mode="trace"
        )
        assert_margins_equal(batched, scalar)

    def test_unknown_cell_rejected(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        fault = CellFault(
            "ghost", TransducerFault("dead-source", channel=0, input_index=0)
        )
        with pytest.raises(NetlistError, match="ghost"):
            engine.run(exhaustive_batch(netlist)[:1], faults=[fault])

    def test_virtual_cell_rejected(self):
        netlist = Netlist("inv")
        netlist.add_input("a")
        netlist.add_cell("n", "INV", ("a",))
        netlist.mark_output("n")
        engine = CircuitEngine(netlist, n_bits=2)
        fault = CellFault(
            "n", TransducerFault("dead-source", channel=0, input_index=0)
        )
        with pytest.raises(NetlistError, match="detector-placement"):
            engine.run([{"a": 0}], faults=[fault])

    def test_duplicate_cell_fault_rejected(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        faults = [
            CellFault(
                "fa_carry",
                TransducerFault("dead-source", channel=0, input_index=0),
            ),
            CellFault(
                "fa_carry",
                TransducerFault("stuck-phase-1", channel=0, input_index=1),
            ),
        ]
        with pytest.raises(NetlistError, match="more than one"):
            engine.run([{"a": 0, "b": 0, "cin": 0}], faults=faults)

    def test_dead_decode_strict_vs_lenient(self, monkeypatch):
        """A decode failure raises under strict and marks entries else."""
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        batch = exhaustive_batch(netlist)[:2]

        original = GateSimulator.run_phasor_batch

        def dying(self, words_batch, noises=None, strict=True):
            runs = original(self, words_batch, noises=noises, strict=strict)
            if self.gate.kind.uses_amplitude_readout:
                return [None] * len(runs)  # kill every XOR decode
            return runs

        monkeypatch.setattr(GateSimulator, "run_phasor_batch", dying)
        with pytest.raises(SimulationError, match="failed to decode"):
            engine.run(batch)
        result = engine.run(batch, strict=False)
        assert result.failed == [True, True]
        assert result.word_errors == 2
        assert all(v is None for v in result.outputs["fa_sum"])
        assert not result.correct

    def test_noise_errors_counted(self):
        netlist = ripple_carry_adder(2)
        engine = CircuitEngine(netlist, n_bits=4)
        rng = random.Random(1)
        batch = [
            {name: rng.randint(0, 1) for name in netlist.inputs}
            for _ in range(12)
        ]
        clean = engine.run(batch, strict=False)
        assert clean.word_errors == 0
        noisy = engine.run(
            batch, noise=NoiseModel(phase_sigma=1.2, seed=2), strict=False
        )
        assert noisy.word_errors > 0
        assert noisy.min_margin < clean.min_margin


# ----------------------------------------------------------------------
# Shared-model plumbing and the calibration GEMM (satellite)
# ----------------------------------------------------------------------
class TestSharedModelAndCalibration:
    @staticmethod
    def _scalar_calibration(simulator):
        """The historical per-channel scalar calibration, as reference."""
        import cmath

        noise, simulator.noise = simulator.noise, None
        try:
            sources = simulator.build_sources(
                [[0] * simulator.gate.n_bits]
                * simulator.gate.n_data_inputs
            )
        finally:
            simulator.noise = noise
        layout = simulator.layout
        reference = []
        for channel in range(simulator.gate.n_bits):
            z = simulator.model.steady_state_phasor(
                sources,
                layout.detector_positions[channel],
                layout.plan.frequencies[channel],
            )
            phase = cmath.phase(z)
            if layout.inverted_outputs[channel]:
                phase -= math.pi
            reference.append((phase, abs(z)))
        return reference

    def _assert_calibration_matches(self, simulator):
        for (phase, amplitude), (ref_phase, ref_amplitude) in zip(
            simulator.calibration(), self._scalar_calibration(simulator)
        ):
            difference = abs(phase - ref_phase) % (2.0 * math.pi)
            assert min(difference, 2.0 * math.pi - difference) <= TOL
            assert amplitude == pytest.approx(ref_amplitude, rel=TOL)

    def test_calibration_gemm_matches_scalar(self):
        gate = physical_gate("MAJ3", n_bits=2)
        self._assert_calibration_matches(GateSimulator(gate))

    def test_calibration_with_inverted_outputs(self):
        from repro.core.frequency_plan import FrequencyPlan
        from repro.core.gate import DataParallelGate
        from repro.core.layout import InlineGateLayout
        from repro.units import GHZ

        plan = FrequencyPlan.uniform(2, 10 * GHZ, 10 * GHZ)
        layout = InlineGateLayout(
            Waveguide(), plan, n_inputs=3, inverted_outputs=[True, False]
        )
        self._assert_calibration_matches(
            GateSimulator(DataParallelGate(layout))
        )

    def test_faulty_calibration_matches_scalar(self):
        """The fault lands in calibration on both paths identically."""
        gate = physical_gate("MAJ3", n_bits=2)
        fault = TransducerFault("weak-source", channel=1, input_index=0)
        self._assert_calibration_matches(FaultySimulator(gate, fault))

    def test_shared_model_requires_same_waveguide(self):
        gate = physical_gate("MAJ3", n_bits=1)
        foreign = LinearWaveguideModel(Waveguide())
        with pytest.raises(SimulationError, match="gate's waveguide"):
            GateSimulator(gate, model=foreign)

    def test_shared_model_front_smoothing_mismatch(self):
        gate = physical_gate("MAJ3", n_bits=1)
        model = LinearWaveguideModel(gate.layout.waveguide)
        with pytest.raises(SimulationError, match="front_smoothing"):
            GateSimulator(gate, model=model, front_smoothing=1e-12)

    def test_weights_cache_shared_across_simulators(self):
        """Nominal and faulty simulators reuse one weight matrix."""
        gate = physical_gate("MAJ3", n_bits=2)
        model = LinearWaveguideModel(gate.layout.waveguide)
        nominal = GateSimulator(gate, model=model)
        faulty = FaultySimulator(
            gate,
            TransducerFault("stuck-phase-1", channel=0, input_index=1),
            model=model,
        )
        patterns = gate.exhaustive_patterns()
        nominal.run_phasor_batch(patterns)
        faulty.run_phasor_batch(patterns)
        assert nominal._nominal_weights is faulty._nominal_weights
        assert len(model._weights_cache) == 1
        assert not nominal._nominal_weights.flags.writeable

    def test_perturbed_geometries_are_not_memoised(self):
        """Position-noise sweeps must not grow the weights cache."""
        gate = physical_gate("MAJ3", n_bits=2)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        simulator.run_phasor_batch(patterns)  # nominal: one cached entry
        size = len(simulator.model._weights_cache)
        assert size == 1
        for trial in range(3):
            # One shared perturbed geometry per batch: shared-geometry
            # GEMM path with a never-repeating position array.
            simulator.noise = NoiseModel(position_sigma=1e-9, seed=trial)
            simulator.run_phasor_batch(patterns)
        assert len(simulator.model._weights_cache) == size

    def test_engine_shares_one_model(self):
        netlist, _, _ = full_adder()
        engine = CircuitEngine(netlist, n_bits=2)
        engine.run(exhaustive_batch(netlist)[:2])
        assert engine.simulator_for("MAJ3").model is engine.model()
        assert engine.simulator_for("XOR2").model is engine.model()
