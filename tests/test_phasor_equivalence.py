"""Physics-equivalence harness pinning every phasor fast path.

Every array-native path the batched backend takes -- ``SourceBank``
construction, the cached propagation-weight GEMM, the vectorised noise
draws, the vectorised golden outputs and decode, the fault column
mutation, and both geometry branches of the trace batch -- must
reproduce the scalar ``WaveSource`` reference to <= 1e-12 (floating
point reassociation only), across gate kinds, word widths and detector
placements.  Mirrors the :mod:`tests.test_kernels` pattern: the
allocating per-word API is the ground truth; the fast path is pinned to
it, never the other way around.

Phases compare *circularly*: a resultant landing exactly on the +/-pi
wrap boundary may change sign between summation orders while remaining
the same physical phase.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.core.faults import FaultySimulator, TransducerFault
from repro.core.frequency_plan import FrequencyPlan
from repro.core.gate import DataParallelGate, GateKind
from repro.core.layout import InlineGateLayout
from repro.core.simulate import GateSimulator
from repro.errors import SimulationError
from repro.units import GHZ
from repro.waveguide import NoiseModel, SourceBank, Waveguide
from repro.waveguide.linear_model import LinearWaveguideModel, WaveSource

TOL = 1e-12

#: (gate kind, parallel word width, per-channel detector inversions).
#: Covers phase readout (majority family), amplitude readout (XOR
#: family), constant-input expansion (AND/OR), single-channel and
#: byte-wide words, and direct plus complemented detector placements.
GATE_CASES = [
    (GateKind.MAJORITY, 1, (False,)),
    (GateKind.MAJORITY, 2, (False, True)),
    (GateKind.MAJORITY, 4, (True, False, True, False)),
    (GateKind.AND, 2, (False, False)),
    (GateKind.OR, 2, (False, True)),
    (GateKind.XOR, 2, (False, False)),
    (GateKind.XNOR, 3, (False, False, False)),
]


@lru_cache(maxsize=None)
def make_gate(kind, n_bits, inverted):
    """A small laid-out gate (layouts are expensive: cache by case)."""
    n_inputs = 2 if GateKind(kind).uses_amplitude_readout else 3
    plan = FrequencyPlan.uniform(n_bits, 10 * GHZ, 10 * GHZ)
    layout = InlineGateLayout(
        Waveguide(), plan, n_inputs=n_inputs, inverted_outputs=list(inverted)
    )
    return DataParallelGate(layout, kind=kind)


def phase_distance(a, b):
    """Distance between two phases on the circle [rad]."""
    difference = abs(a - b) % (2.0 * math.pi)
    return min(difference, 2.0 * math.pi - difference)


def assert_runs_equivalent(batched, reference):
    """Batched GateRunResults must pin to the scalar reference runs."""
    assert len(batched) == len(reference)
    for batch, serial in zip(batched, reference):
        assert batch.words == serial.words
        assert batch.decoded == serial.decoded
        assert batch.expected == serial.expected
        for fast, ref in zip(batch.decodes, serial.decodes):
            assert fast.bit == ref.bit
            assert phase_distance(fast.phase, ref.phase) <= TOL
            assert fast.amplitude == pytest.approx(
                ref.amplitude, rel=TOL, abs=TOL
            )
            assert fast.margin == pytest.approx(ref.margin, rel=TOL, abs=TOL)


def scalar_reference_runs(simulator, patterns, noises=None):
    """Per-word ``run_phasor`` results, with per-entry noise swaps."""
    if noises is None:
        noises = [simulator.noise] * len(patterns)
    saved = simulator.noise
    runs = []
    try:
        for words, noise in zip(patterns, noises):
            simulator.noise = noise
            runs.append(simulator.run_phasor(words))
    finally:
        simulator.noise = saved
    return runs


# ----------------------------------------------------------------------
# Source bank construction
# ----------------------------------------------------------------------
class TestSourceBankConstruction:
    @pytest.mark.parametrize("kind,n_bits,inverted", GATE_CASES)
    def test_bank_matches_wavesource_lists(self, kind, n_bits, inverted):
        """Array-native construction equals per-word WaveSource lists."""
        gate = make_gate(kind, n_bits, inverted)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        bank = simulator.build_source_bank(patterns)
        assert bank.n_sets == len(patterns)
        assert bank.n_sources == gate.layout.n_sources
        assert bank.shared_geometry
        for entry, words in enumerate(patterns):
            reference = simulator.build_sources(words)
            materialised = bank.sources(entry)
            assert len(materialised) == len(reference)
            for fast, ref in zip(materialised, reference):
                assert fast.position == ref.position
                assert fast.frequency == ref.frequency
                assert fast.amplitude == ref.amplitude
                assert fast.phase == ref.phase
                assert fast.t_on == ref.t_on

    def test_noisy_bank_matches_wavesource_lists(self):
        """Vectorised RNG blocks reproduce the scalar draws exactly."""
        gate = make_gate(GateKind.MAJORITY, 2, (False, True))
        noise = NoiseModel(
            amplitude_sigma=0.05, phase_sigma=0.1, position_sigma=1e-9, seed=11
        )
        simulator = GateSimulator(gate, noise=noise)
        patterns = gate.exhaustive_patterns()
        bank = simulator.build_source_bank(patterns)
        for entry, words in enumerate(patterns):
            for fast, ref in zip(
                bank.sources(entry), simulator.build_sources(words)
            ):
                assert fast.amplitude == ref.amplitude
                assert fast.phase == ref.phase
                assert fast.position == ref.position

    def test_custom_amplitudes_flow_into_bank(self):
        gate = make_gate(GateKind.MAJORITY, 2, (False, False))
        amplitudes = np.linspace(0.5, 1.5, gate.layout.n_sources).reshape(
            gate.n_bits, gate.layout.n_inputs
        )
        simulator = GateSimulator(gate, amplitudes=amplitudes)
        bank = simulator.build_source_bank(gate.exhaustive_patterns()[:2])
        np.testing.assert_array_equal(
            bank.amplitude, np.tile(amplitudes.ravel(), (2, 1))
        )

    def test_empty_batch_rejected(self):
        gate = make_gate(GateKind.MAJORITY, 1, (False,))
        with pytest.raises(SimulationError, match="no source sets"):
            GateSimulator(gate).build_source_bank([])


# ----------------------------------------------------------------------
# Steady-state phasor paths
# ----------------------------------------------------------------------
class TestPhasorEquivalence:
    @pytest.mark.parametrize("kind,n_bits,inverted", GATE_CASES)
    def test_batch_matches_scalar_reference(self, kind, n_bits, inverted):
        gate = make_gate(kind, n_bits, inverted)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        reference = scalar_reference_runs(simulator, patterns)
        batched = simulator.run_phasor_batch(patterns)
        assert_runs_equivalent(batched, reference)

    @pytest.mark.parametrize("kind,n_bits,inverted", GATE_CASES[:3])
    def test_phasor_block_matches_steady_state_phasor(
        self, kind, n_bits, inverted
    ):
        """Model-level: the weights GEMM equals per-source summation."""
        gate = make_gate(kind, n_bits, inverted)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        bank = simulator.build_source_bank(patterns)
        layout = gate.layout
        block = simulator.model.steady_state_phasor_block(
            bank, layout.detector_positions, layout.plan.frequencies
        )
        assert block.shape == (len(patterns), gate.n_bits)
        for entry in range(len(patterns)):
            sources = bank.sources(entry)
            for channel in range(gate.n_bits):
                reference = simulator.model.steady_state_phasor(
                    sources,
                    layout.detector_positions[channel],
                    layout.plan.frequencies[channel],
                )
                assert abs(block[entry, channel] - reference) <= TOL * max(
                    1.0, abs(reference)
                )

    def test_byte_gate_batch_matches_scalar(self, byte_gate):
        """The paper's byte gate: all 8 exhaustive patterns."""
        simulator = GateSimulator(byte_gate)
        patterns = byte_gate.exhaustive_patterns()
        reference = scalar_reference_runs(simulator, patterns)
        assert_runs_equivalent(simulator.run_phasor_batch(patterns), reference)


# ----------------------------------------------------------------------
# Noise paths
# ----------------------------------------------------------------------
class TestNoiseEquivalence:
    @pytest.mark.parametrize(
        "noise_kwargs",
        [
            {"amplitude_sigma": 0.08},
            {"phase_sigma": 0.2},
            {"position_sigma": 2e-9},
            {"amplitude_sigma": 0.05, "phase_sigma": 0.1, "position_sigma": 1e-9},
        ],
        ids=("amplitude", "phase", "position", "combined"),
    )
    def test_per_entry_noise_matches_scalar(self, noise_kwargs):
        """One independent realisation per entry (Monte-Carlo style).

        Position noise breaks shared geometry across entries, so the
        ``position`` and ``combined`` cases also pin the general
        per-detector fallback of the phasor block.
        """
        gate = make_gate(GateKind.MAJORITY, 2, (False, True))
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        noises = [
            NoiseModel(seed=trial, **noise_kwargs)
            for trial in range(len(patterns))
        ]
        reference = scalar_reference_runs(simulator, patterns, noises)
        batched = simulator.run_phasor_batch(patterns, noises=noises)
        assert_runs_equivalent(batched, reference)

    def test_shared_noise_model_matches_scalar(self):
        """``noises=None`` + simulator noise: one draw shared batch-wide."""
        gate = make_gate(GateKind.XOR, 2, (False, False))
        noise = NoiseModel(amplitude_sigma=0.1, phase_sigma=0.05, seed=5)
        simulator = GateSimulator(gate, noise=noise)
        patterns = gate.exhaustive_patterns()
        reference = scalar_reference_runs(simulator, patterns)
        assert_runs_equivalent(simulator.run_phasor_batch(patterns), reference)

    def test_source_perturbations_match_perturb_sources(self):
        """Noise-layer pin: block draws equal interleaved scalar draws."""
        noise = NoiseModel(
            amplitude_sigma=0.07, phase_sigma=0.3, position_sigma=5e-10, seed=13
        )
        sources = [
            WaveSource(position=j * 50e-9, frequency=10e9, amplitude=1.0)
            for j in range(6)
        ]
        reference = noise.perturb_sources(sources)
        factor, phase_offset, position_offset = noise.source_perturbations(
            len(sources)
        )
        for j, (ref, source) in enumerate(zip(reference, sources)):
            assert source.amplitude * factor[j] == ref.amplitude
            assert source.phase + phase_offset[j] == ref.phase
            assert source.position + position_offset[j] == ref.position


# ----------------------------------------------------------------------
# Fault paths
# ----------------------------------------------------------------------
class TestFaultEquivalence:
    @pytest.mark.parametrize(
        "kind", ("dead-source", "stuck-phase-0", "stuck-phase-1", "weak-source")
    )
    def test_faulty_batch_matches_scalar(self, kind):
        gate = make_gate(GateKind.MAJORITY, 2, (False, True))
        fault = TransducerFault(kind=kind, channel=1, input_index=2)
        simulator = FaultySimulator(gate, fault)
        patterns = gate.exhaustive_patterns()
        reference = scalar_reference_runs(simulator, patterns)
        assert_runs_equivalent(simulator.run_phasor_batch(patterns), reference)

    def test_scalar_only_override_builds_batches_through_it(self):
        """The most-derived customisation decides the construction path.

        A subclass overriding only scalar ``build_sources`` -- even on
        top of a bank-aware class like ``FaultySimulator`` -- must see
        its customisation in batches, at per-word construction cost.
        """
        from dataclasses import replace as dc_replace

        gate = make_gate(GateKind.MAJORITY, 2, (False, False))
        fault = TransducerFault(kind="weak-source", channel=0, input_index=0)

        class ExtraWeak(FaultySimulator):
            def build_sources(self, words):
                sources = super().build_sources(words)
                sources[-1] = dc_replace(sources[-1], amplitude=0.3)
                return sources

        simulator = ExtraWeak(gate, fault)
        assert simulator._scalar_sources_customised()
        patterns = gate.exhaustive_patterns()
        bank = simulator.build_source_bank(patterns)
        assert (bank.amplitude[:, -1] == 0.3).all()
        reference = scalar_reference_runs(simulator, patterns)
        assert_runs_equivalent(simulator.run_phasor_batch(patterns), reference)

    def test_inherited_scalar_override_survives_derived_bank_hook(self):
        """A scalar-only override is honoured below a bank-hook subclass."""
        from dataclasses import replace as dc_replace

        gate = make_gate(GateKind.MAJORITY, 2, (False, False))

        class ScalarOnly(GateSimulator):
            def build_sources(self, words):
                sources = super().build_sources(words)
                sources[0] = dc_replace(sources[0], amplitude=0.5)
                return sources

        class DerivedBankHook(ScalarOnly):
            def mutate_source_bank(self, bank):  # orthogonal no-op hook
                return bank

        simulator = DerivedBankHook(gate)
        assert simulator._scalar_sources_customised()
        patterns = gate.exhaustive_patterns()
        bank = simulator.build_source_bank(patterns)
        assert (bank.amplitude[:, 0] == 0.5).all()
        reference = scalar_reference_runs(simulator, patterns)
        assert_runs_equivalent(simulator.run_phasor_batch(patterns), reference)

    def test_build_source_bank_override_reaches_run_phasor_batch(self):
        """Batched entry points route through the overridable builder."""
        gate = make_gate(GateKind.MAJORITY, 2, (False, False))

        class HalvedBank(GateSimulator):
            def build_source_bank(self, words_batch, noises=None):
                bank = super().build_source_bank(words_batch, noises)
                return bank.replace(amplitude=0.5 * bank.amplitude)

        simulator = HalvedBank(gate)
        plain = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()
        halved = simulator.run_phasor_batch(patterns)
        reference = plain.run_phasor_batch(patterns)
        for fast, ref in zip(halved, reference):
            for a, b in zip(fast.decodes, ref.decodes):
                assert a.amplitude == pytest.approx(0.5 * b.amplitude, rel=TOL)

    def test_dead_channel_strict_raises_like_scalar(self):
        """A single-input channel killed outright: strict raise vs None."""
        gate = make_gate(GateKind.MAJORITY, 1, (False,))
        plan = FrequencyPlan.uniform(1, 10 * GHZ, 10 * GHZ)
        layout = InlineGateLayout(Waveguide(), plan, n_inputs=1)
        gate = DataParallelGate(layout, kind=GateKind.MAJORITY)
        fault = TransducerFault(kind="dead-source", channel=0, input_index=0)
        simulator = FaultySimulator(gate, fault)
        patterns = gate.exhaustive_patterns()
        with pytest.raises(SimulationError, match="channel 0"):
            simulator.run_phasor_batch(patterns)
        lenient = simulator.run_phasor_batch(patterns, strict=False)
        assert lenient == [None] * len(patterns)


# ----------------------------------------------------------------------
# Trace paths and geometry branches
# ----------------------------------------------------------------------
class TestTraceGeometryBranches:
    @staticmethod
    def _model():
        return LinearWaveguideModel(Waveguide())

    @staticmethod
    def _sources(offset):
        return [
            WaveSource(position=offset, frequency=10e9, phase=0.0),
            WaveSource(position=offset + 120e-9, frequency=15e9, phase=math.pi),
        ]

    def test_shared_geometry_branch(self):
        """Same positions everywhere: the carrier-basis GEMM branch."""
        model = self._model()
        sets = [self._sources(0.0), self._sources(0.0)]
        t = np.linspace(0.0, 2e-9, 257)
        batch = model.stack_sources(sets)
        assert model._shared_geometry(batch)
        traces = model.trace_batch(sets, 400e-9, t)
        for row, sources in zip(traces, sets):
            np.testing.assert_allclose(
                row, model.trace(sources, 400e-9, t), rtol=0, atol=TOL
            )

    def test_mismatched_geometry_falls_back(self):
        """Different positions per set: detected, per-source path taken."""
        model = self._model()
        sets = [self._sources(0.0), self._sources(30e-9)]
        t = np.linspace(0.0, 2e-9, 257)
        batch = model.stack_sources(sets)
        assert not model._shared_geometry(batch)
        traces = model.trace_batch(sets, 400e-9, t)
        for row, sources in zip(traces, sets):
            np.testing.assert_allclose(
                row, model.trace(sources, 400e-9, t), rtol=0, atol=TOL
            )

    def test_cached_basis_is_exact_and_frozen(self):
        """cache_basis memoises per (geometry, detector, grid) without
        changing a single sample, and never fills from plain calls."""
        model = self._model()
        sets = [self._sources(0.0), self._sources(0.0)]
        t = np.linspace(0.0, 2e-9, 257)
        plain = model.trace_batch(sets, 400e-9, t)
        assert model._basis_cache == {}  # default: no memoisation
        cached_first = model.trace_batch(sets, 400e-9, t, cache_basis=True)
        assert len(model._basis_cache) == 1
        cached_again = model.trace_batch(sets, 400e-9, t, cache_basis=True)
        np.testing.assert_array_equal(plain, cached_first)
        np.testing.assert_array_equal(cached_first, cached_again)
        for basis_sin, basis_cos in model._basis_cache.values():
            assert not basis_sin.flags.writeable
            assert not basis_cos.flags.writeable
        # A different detector or grid is a different cache entry.
        model.trace_batch(sets, 300e-9, t, cache_basis=True)
        assert len(model._basis_cache) == 2

    def test_precomputed_weights_require_shared_geometry(self):
        model = self._model()
        sets = [self._sources(0.0), self._sources(30e-9)]
        weights = model.phasor_weights(
            [s.position for s in sets[0]],
            [s.frequency for s in sets[0]],
            [400e-9],
            [10e9],
        )
        with pytest.raises(SimulationError, match="shared geometry"):
            model.steady_state_phasor_block(
                sets, [400e-9], [10e9], weights=weights
            )

    def test_run_batch_consumes_bank(self):
        """Time-domain batch through a SourceBank equals scalar runs."""
        gate = make_gate(GateKind.MAJORITY, 2, (False, True))
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()[:4]
        sequential = [simulator.run(words) for words in patterns]
        batched = simulator.run_batch(patterns)
        for serial, batch in zip(sequential, batched):
            assert batch.decoded == serial.decoded
            assert batch.expected == serial.expected
            for channel, trace in serial.traces.items():
                np.testing.assert_allclose(
                    batch.traces[channel], trace, rtol=0, atol=1e-9
                )

    @pytest.mark.parametrize(
        "kind,n_bits,inverted",
        [
            (GateKind.MAJORITY, 2, (False, True)),
            (GateKind.XOR, 2, (False, False)),
        ],
    )
    def test_trace_noise_batch_matches_scalar(self, kind, n_bits, inverted):
        """trace_sigma > 0 stays on the vectorised lock-in (ROADMAP PR 4
        follow-up (b)): one draw per distinct model perturbs the channel
        blocks, reproducing the scalar per-trace decode at <= 1e-12."""
        gate = make_gate(kind, n_bits, inverted)
        simulator = GateSimulator(gate)
        patterns = gate.exhaustive_patterns()[:4]
        noises = [
            NoiseModel(trace_sigma=0.05, seed=3),
            None,
            NoiseModel(trace_sigma=0.02, phase_sigma=0.05, seed=9),
            NoiseModel(trace_sigma=0.05, seed=3),  # shares entry 0's draw
        ]
        batched = simulator.run_batch(patterns, noises=noises)
        saved = simulator.noise
        reference = []
        try:
            for words, noise in zip(patterns, noises):
                simulator.noise = noise
                reference.append(simulator.run(words))
        finally:
            simulator.noise = saved
        assert_runs_equivalent(batched, reference)
        for batch, serial in zip(batched, reference):
            for channel, trace in serial.traces.items():
                np.testing.assert_allclose(
                    batch.traces[channel], trace, rtol=0, atol=1e-9
                )

    def test_trace_perturbation_matches_perturb_trace(self):
        """The vectorised draw equals the per-trace realisation exactly."""
        noise = NoiseModel(trace_sigma=0.1, seed=21)
        trace = np.linspace(-1.0, 1.0, 257)
        np.testing.assert_array_equal(
            noise.perturb_trace(trace),
            trace + noise.trace_perturbation(trace.size),
        )
        silent = NoiseModel(seed=21)
        np.testing.assert_array_equal(
            silent.trace_perturbation(5), np.zeros(5)
        )

    def test_bank_accepted_by_batched_model_entry_points(self):
        """A SourceBank passes anywhere source set lists do."""
        model = self._model()
        sets = [self._sources(0.0), self._sources(0.0)]
        bank = SourceBank.from_sources(sets)
        t = np.linspace(0.0, 1e-9, 129)
        np.testing.assert_allclose(
            model.trace_batch(bank, 300e-9, t),
            model.trace_batch(sets, 300e-9, t),
            rtol=0,
            atol=0,
        )
        np.testing.assert_allclose(
            model.steady_state_phasor_batch(bank, 300e-9, 10e9),
            model.steady_state_phasor_batch(sets, 300e-9, 10e9),
            rtol=0,
            atol=0,
        )


# ----------------------------------------------------------------------
# Single-precision backend
# ----------------------------------------------------------------------


class TestFloat32Equivalence:
    """The float32 backend against the float64 pinned ground truth.

    The classes above pin the float64 fast paths at <= 1e-12; the
    single-precision variant promises its documented ~1e-5 relative
    tolerance (see :mod:`repro.backends`) with identical decodes --
    float32 rounding must never flip a bit through the 0.1-1.0 rad
    decode margins.
    """

    TOL32 = 1e-5

    def _simulators(self, kind, n_bits, inverted):
        from repro.backends import NumpyBackend
        from repro.waveguide.linear_model import LinearWaveguideModel

        gate = make_gate(kind, n_bits, inverted)
        reference = GateSimulator(gate)
        model32 = LinearWaveguideModel(
            gate.layout.waveguide, backend=NumpyBackend("single")
        )
        return gate, reference, GateSimulator(gate, model=model32)

    @pytest.mark.parametrize("kind,n_bits,inverted", GATE_CASES[:4])
    def test_phasor_batch_tracks_float64(self, kind, n_bits, inverted):
        gate, reference, single = self._simulators(kind, n_bits, inverted)
        patterns = gate.exhaustive_patterns()
        runs64 = reference.run_phasor_batch(patterns)
        runs32 = single.run_phasor_batch(patterns)
        for run64, run32 in zip(runs64, runs32):
            assert run32.decoded == run64.decoded
            assert run32.expected == run64.expected
            for fast, ref in zip(run32.decodes, run64.decodes):
                assert fast.bit == ref.bit
                assert phase_distance(fast.phase, ref.phase) <= self.TOL32
                assert fast.amplitude == pytest.approx(
                    ref.amplitude, rel=self.TOL32, abs=self.TOL32
                )

    def test_phasor_weights_are_complex64_and_close(self):
        from repro.backends import NumpyBackend
        from repro.waveguide.linear_model import LinearWaveguideModel

        gate = make_gate(GateKind.MAJORITY, 2, (False, True))
        layout = gate.layout
        bank = GateSimulator(gate).build_source_bank(
            gate.exhaustive_patterns()[:2]
        )
        position, frequency = bank.position[0], bank.frequency[0]
        model64 = LinearWaveguideModel(layout.waveguide)
        model32 = LinearWaveguideModel(
            layout.waveguide, backend=NumpyBackend("single")
        )
        w64 = model64.phasor_weights(
            position, frequency, layout.detector_positions,
            layout.plan.frequencies,
        )
        w32 = model32.phasor_weights(
            position, frequency, layout.detector_positions,
            layout.plan.frequencies,
        )
        assert w64.dtype == np.complex128
        assert w32.dtype == np.complex64
        scale = max(float(np.max(np.abs(w64))), 1.0)
        np.testing.assert_allclose(
            w32.astype(complex), w64, rtol=0, atol=self.TOL32 * scale
        )
