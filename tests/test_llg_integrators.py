"""Tests for the LLG right-hand side and the time integrators."""

import math

import numpy as np
import pytest

from repro.constants import MU0
from repro.errors import SimulationError
from repro.materials import PERMALLOY
from repro.mm import Mesh, State, ZeemanField
from repro.mm.integrators import integrate, rk4_step, rkf45_step
from repro.mm.llg import (
    effective_field,
    llg_rhs,
    llg_rhs_from_field,
    max_torque,
)


def _macrospin(direction=(1, 0, 0), alpha=0.01):
    mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
    material = PERMALLOY.with_(alpha=alpha)
    return State.uniform(mesh, material, direction=direction)


class TestLlgRhs:
    def test_aligned_state_stationary(self):
        state = _macrospin(direction=(0, 0, 1))
        rhs = llg_rhs(state, [ZeemanField((0, 0, 1e5))])
        np.testing.assert_allclose(rhs, 0.0, atol=1e-6)

    def test_precession_direction(self):
        # m along +x, H along +z: dm/dt ~ -gamma*mu0 (m x H) points +y.
        state = _macrospin(direction=(1, 0, 0), alpha=1e-8)
        rhs = llg_rhs(state, [ZeemanField((0, 0, 1e5))])
        assert rhs[0, 0, 0, 1] > 0
        assert abs(rhs[0, 0, 0, 0]) < 1e-3 * abs(rhs[0, 0, 0, 1])

    def test_precession_rate_magnitude(self):
        state = _macrospin(direction=(1, 0, 0), alpha=1e-8)
        h = 1e5
        rhs = llg_rhs(state, [ZeemanField((0, 0, h))])
        expected = state.material.gamma * MU0 * h
        assert abs(rhs[0, 0, 0, 1]) == pytest.approx(expected, rel=1e-6)

    def test_damping_pulls_toward_field(self):
        state = _macrospin(direction=(1, 0, 0), alpha=0.5)
        rhs = llg_rhs(state, [ZeemanField((0, 0, 1e5))])
        assert rhs[0, 0, 0, 2] > 0  # relaxing toward +z

    def test_rhs_perpendicular_to_m(self):
        state = _macrospin(direction=(0.6, 0.0, 0.8))
        rhs = llg_rhs(state, [ZeemanField((1e4, 2e4, 5e4))])
        dot = np.einsum("...i,...i->...", state.m, rhs)
        np.testing.assert_allclose(dot, 0.0, atol=1e-3)

    def test_alpha_array_override(self):
        mesh = Mesh(2, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, PERMALLOY, direction=(1, 0, 0))
        h = np.zeros(mesh.shape + (3,))
        h[..., 2] = 1e5
        alpha = np.array([0.001, 0.5]).reshape(2, 1, 1)
        rhs = llg_rhs_from_field(state.m, h, state.material, alpha=alpha)
        # High-damping cell relaxes toward z much faster.
        assert rhs[1, 0, 0, 2] > 100 * rhs[0, 0, 0, 2]

    def test_effective_field_sums_terms(self):
        state = _macrospin()
        terms = [ZeemanField((0, 0, 1e5)), ZeemanField((0, 0, 2e5))]
        h = effective_field(state, terms)
        assert h[0, 0, 0, 2] == pytest.approx(3e5)

    def test_max_torque_zero_when_aligned(self):
        state = _macrospin(direction=(0, 0, 1))
        assert max_torque(state, [ZeemanField((0, 0, 1e5))]) == pytest.approx(
            0.0, abs=1e-6
        )


class TestRk4:
    def test_exponential_decay_accuracy(self):
        # y' = -y, y(0) = 1, exact y(1) = exp(-1).
        y = np.array([1.0])
        t, dt = 0.0, 0.1
        for _ in range(10):
            y = rk4_step(lambda tt, yy: -yy, t, y, dt)
            t += dt
        assert y[0] == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_fourth_order_convergence(self):
        def solve(n_steps):
            y = np.array([1.0])
            dt = 1.0 / n_steps
            t = 0.0
            for _ in range(n_steps):
                y = rk4_step(lambda tt, yy: -yy, t, y, dt)
                t += dt
            return abs(y[0] - math.exp(-1.0))

        error_coarse = solve(10)
        error_fine = solve(20)
        order = math.log2(error_coarse / error_fine)
        assert order == pytest.approx(4.0, abs=0.3)

    def test_oscillator_energy_drift_small(self):
        # y'' = -y as a 2-vector system, 100 periods.
        def rhs(t, y):
            return np.array([y[1], -y[0]])

        y = np.array([1.0, 0.0])
        dt = 0.05
        t = 0.0
        for _ in range(int(2 * math.pi / dt) * 10):
            y = rk4_step(rhs, t, y, dt)
            t += dt
        energy = y[0] ** 2 + y[1] ** 2
        assert energy == pytest.approx(1.0, rel=1e-4)


class TestRkf45:
    def test_solution_accuracy(self):
        y = np.array([1.0])
        y5, _ = rkf45_step(lambda t, yy: -yy, 0.0, y, 0.1)
        assert y5[0] == pytest.approx(math.exp(-0.1), rel=1e-9)

    def test_error_estimate_scales_with_dt(self):
        y = np.array([1.0])
        _, err_small = rkf45_step(lambda t, yy: -yy * yy, 0.0, y, 0.05)
        _, err_large = rkf45_step(lambda t, yy: -yy * yy, 0.0, y, 0.2)
        assert err_large > err_small

    def test_error_tiny_for_linear_problem(self):
        y = np.array([1.0])
        _, err = rkf45_step(lambda t, yy: np.array([2.0]), 0.0, y, 0.1)
        assert err < 1e-12


class TestIntegrate:
    def test_fixed_step_reaches_t_end_exactly(self):
        times = []
        integrate(
            lambda t, y: -y,
            0.0,
            np.array([1.0]),
            1.05,
            dt=0.1,
            callback=lambda t, y: times.append(t),
        )
        assert times[-1] == pytest.approx(1.05)

    def test_adaptive_matches_exact_solution(self):
        t, y = integrate(
            lambda t, yy: -yy,
            0.0,
            np.array([1.0]),
            2.0,
            dt=0.5,
            adaptive=True,
            tol=1e-8,
        )
        assert y[0] == pytest.approx(math.exp(-2.0), rel=1e-6)

    def test_adaptive_shrinks_step_on_stiffness(self):
        steps = []
        integrate(
            lambda t, yy: -50.0 * yy,
            0.0,
            np.array([1.0]),
            1.0,
            dt=1.0,
            adaptive=True,
            tol=1e-6,
            callback=lambda t, y: steps.append(t),
        )
        assert len(steps) > 5  # forced to subdivide

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            integrate(lambda t, y: y, 0.0, np.array([1.0]), -1.0, dt=0.1)
        with pytest.raises(SimulationError):
            integrate(lambda t, y: y, 0.0, np.array([1.0]), 1.0, dt=0.0)

    def test_max_steps_guard(self):
        with pytest.raises(SimulationError, match="max_steps"):
            integrate(
                lambda t, y: y,
                0.0,
                np.array([1.0]),
                1.0,
                dt=1e-9,
                max_steps=10,
            )
