"""Tests for repro.analysis.timing and repro.core.design_io."""

import io
import json
import math

import numpy as np
import pytest

from repro.errors import ReadoutError, ReproError
from repro.analysis.timing import (
    analytic_envelope,
    arrival_time,
    envelope_correlation_delay,
    group_velocity_from_traces,
)
from repro.core.design_io import (
    gate_from_dict,
    gate_to_dict,
    load_gate,
    save_gate,
)
from repro.core.simulate import GateSimulator
from repro.waveguide import Detector, LinearWaveguideModel, WaveSource, Waveguide


def _burst(t, f, t_on, length=1e-9, amplitude=1.0):
    envelope = ((t >= t_on) & (t <= t_on + length)).astype(float)
    return amplitude * envelope * np.sin(2 * np.pi * f * (t - t_on))


class TestEnvelope:
    def test_constant_tone_envelope_flat(self):
        t = np.arange(0, 2e-9, 1e-12)
        envelope = analytic_envelope(np.sin(2 * np.pi * 10e9 * t))
        interior = envelope[100:-100]
        np.testing.assert_allclose(interior, 1.0, atol=0.02)

    def test_burst_envelope_matches_gate(self):
        t = np.arange(0, 4e-9, 1e-12)
        signal = _burst(t, 10e9, 1e-9, length=1e-9)
        envelope = analytic_envelope(signal)
        assert envelope[:900].max() < 0.1
        assert envelope[1400] > 0.8

    def test_too_short_rejected(self):
        with pytest.raises(ReadoutError):
            analytic_envelope(np.zeros(4))


class TestArrivalTime:
    def test_burst_arrival(self):
        t = np.arange(0, 4e-9, 1e-12)
        signal = _burst(t, 10e9, 1.5e-9)
        measured = arrival_time(t, signal, threshold_ratio=0.5)
        assert measured == pytest.approx(1.5e-9, abs=0.1e-9)

    def test_zero_signal_rejected(self):
        t = np.arange(0, 1e-9, 1e-12)
        with pytest.raises(ReadoutError):
            arrival_time(t, np.zeros_like(t))

    def test_threshold_validation(self):
        t = np.arange(0, 1e-9, 1e-12)
        s = np.sin(2 * np.pi * 10e9 * t)
        with pytest.raises(ReadoutError):
            arrival_time(t, s, threshold_ratio=1.5)


class TestGroupVelocity:
    def test_linear_model_time_of_flight_matches_dispersion(self):
        """Two detectors on the linear model measure v_g consistent with
        the analytic group velocity."""
        waveguide = Waveguide()
        model = LinearWaveguideModel(waveguide)
        f = 20e9
        source = WaveSource(position=0.0, frequency=f)
        k, v_g_analytic, _ = model.wave_parameters(f)
        near, far = 200e-9, 700e-9
        result = model.run(
            [source],
            [Detector(near, "near"), Detector(far, "far")],
            duration=3e-9,
            sample_rate=64 * f,
        )
        measured = group_velocity_from_traces(
            result["t"],
            result["traces"]["near"],
            result["traces"]["far"],
            far - near,
            threshold_ratio=0.4,
        )
        assert measured == pytest.approx(v_g_analytic, rel=0.15)

    def test_orders_must_be_sane(self):
        t = np.arange(0, 4e-9, 1e-12)
        early = _burst(t, 10e9, 0.5e-9)
        late = _burst(t, 10e9, 2.0e-9)
        with pytest.raises(ReadoutError):
            group_velocity_from_traces(t, late, early, 100e-9)
        with pytest.raises(ReadoutError):
            group_velocity_from_traces(t, early, late, -1e-9)

    def test_correlation_delay(self):
        t = np.arange(0, 6e-9, 1e-12)
        near = _burst(t, 10e9, 1.0e-9)
        far = _burst(t, 10e9, 2.2e-9)
        delay = envelope_correlation_delay(t, near, far)
        assert delay == pytest.approx(1.2e-9, abs=0.05e-9)


class TestDesignIo:
    def test_roundtrip_byte_gate(self, byte_gate):
        document = gate_to_dict(byte_gate)
        rebuilt = gate_from_dict(document)
        assert rebuilt.n_bits == byte_gate.n_bits
        assert rebuilt.kind == byte_gate.kind
        assert rebuilt.layout.multipliers == byte_gate.layout.multipliers
        np.testing.assert_allclose(
            rebuilt.layout.detector_positions,
            byte_gate.layout.detector_positions,
        )

    def test_rebuilt_gate_still_functions(self, byte_gate):
        rebuilt = gate_from_dict(gate_to_dict(byte_gate))
        words = [[1, 0] * 4, [0, 1] * 4, [1, 1, 0, 0] * 2]
        assert GateSimulator(rebuilt).run_phasor(words).correct

    def test_json_file_roundtrip(self, byte_gate, tmp_path):
        path = tmp_path / "design.json"
        save_gate(byte_gate, str(path))
        loaded = load_gate(str(path))
        assert loaded.describe() == byte_gate.describe()

    def test_stream_roundtrip(self, byte_gate):
        buffer = io.StringIO()
        save_gate(byte_gate, buffer)
        buffer.seek(0)
        loaded = load_gate(buffer)
        assert loaded.n_bits == 8

    def test_document_is_plain_json(self, byte_gate):
        text = json.dumps(gate_to_dict(byte_gate))
        assert "Fe60Co20B20" in text

    def test_wrong_format_rejected(self):
        with pytest.raises(ReproError, match="format"):
            gate_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, byte_gate):
        document = gate_to_dict(byte_gate)
        document["version"] = 99
        with pytest.raises(ReproError, match="version"):
            gate_from_dict(document)

    def test_inverted_outputs_survive(self):
        from repro.core.frequency_plan import FrequencyPlan
        from repro.core.gate import DataParallelGate
        from repro.core.layout import InlineGateLayout

        plan = FrequencyPlan([10e9, 20e9])
        layout = InlineGateLayout(
            Waveguide(), plan, n_inputs=3, inverted_outputs=[True, False]
        )
        gate = DataParallelGate(layout)
        rebuilt = gate_from_dict(gate_to_dict(gate))
        assert rebuilt.layout.inverted_outputs == [True, False]

    def test_xor_kind_survives(self):
        from repro import byte_xor_gate

        rebuilt = gate_from_dict(gate_to_dict(byte_xor_gate()))
        assert rebuilt.kind.value == "xor"
