"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import importlib

import repro.analysis.ascii_plot
import repro.circuits.engine
import repro.circuits.netlist
import repro.core.encoding
import repro.mm.mesh
import repro.obs
import repro.serve.protocol
import repro.synthesis.mig
import repro.synthesis.parse
import repro.synthesis.passes
import repro.synthesis.table
import repro.units
import repro.waveguide.sources

MODULES = [
    repro.units,
    repro.obs,
    repro.core.encoding,
    repro.mm.mesh,
    repro.analysis.ascii_plot,
    repro.waveguide.sources,
    repro.circuits.engine,
    repro.circuits.netlist,
    repro.serve.protocol,
    repro.synthesis.mig,
    repro.synthesis.parse,
    repro.synthesis.table,
    repro.synthesis.passes,
    # The package re-exports its suite() entry point under the
    # submodule's name, so resolve the module object explicitly.
    importlib.import_module("repro.synthesis.suite"),
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "no doctests found (docstring rot?)"
