"""Tests for repro.mm.spectroscopy (fast synthetic-data paths).

The full LLG-driven measurement is covered by the slow suite; here the
analysis pipeline is validated on synthetic plane-wave movies whose
(k, f) content is known exactly.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mm.spectroscopy import (
    extract_branch,
    record_space_time,
    space_time_spectrum,
)


def _plane_wave_movie(k, f, n_x=128, n_t=256, cell=4e-9, dt=2e-12, amplitude=1.0):
    x = (np.arange(n_x) + 0.5) * cell
    t = np.arange(n_t) * dt
    frames = amplitude * np.sin(
        2 * np.pi * f * t[:, None] - k * x[None, :]
    )
    return frames, t, cell


class TestSpaceTimeSpectrum:
    def test_single_plane_wave_peak(self):
        k0 = 2 * np.pi / 64e-9
        f0 = 15e9
        frames, t, cell = _plane_wave_movie(k0, f0)
        spectrum = space_time_spectrum(frames, t, cell)
        amplitude = spectrum["amplitude"]
        i, j = np.unravel_index(amplitude.argmax(), amplitude.shape)
        assert spectrum["k"][i] == pytest.approx(k0, rel=0.05)
        assert spectrum["f"][j] == pytest.approx(f0, rel=0.05)

    def test_two_waves_two_peaks(self):
        frames1, t, cell = _plane_wave_movie(2 * np.pi / 64e-9, 10e9)
        frames2, _, _ = _plane_wave_movie(2 * np.pi / 32e-9, 40e9)
        spectrum = space_time_spectrum(frames1 + frames2, t, cell)
        ks, fs = extract_branch(spectrum, threshold_ratio=0.3)
        # Both branch points recovered.
        k_targets = sorted([2 * np.pi / 64e-9, 2 * np.pi / 32e-9])
        found = sorted(
            ks[np.argsort(np.abs(ks - target))[0]] for target in k_targets
        )
        np.testing.assert_allclose(found, k_targets, rtol=0.1)

    def test_counterpropagating_wave_folds_to_positive_k(self):
        k0 = 2 * np.pi / 50e-9
        frames, t, cell = _plane_wave_movie(-k0, 20e9)
        spectrum = space_time_spectrum(frames, t, cell)
        assert np.all(spectrum["k"] >= 0)
        amplitude = spectrum["amplitude"]
        i, _ = np.unravel_index(amplitude.argmax(), amplitude.shape)
        assert spectrum["k"][i] == pytest.approx(k0, rel=0.05)

    def test_validation(self):
        frames, t, cell = _plane_wave_movie(1e8, 10e9, n_t=16)
        with pytest.raises(SimulationError):
            space_time_spectrum(frames, t[:-1], cell)
        with pytest.raises(SimulationError):
            space_time_spectrum(frames[:4], t[:4], cell)
        bad_t = t.copy()
        bad_t[3] *= 1.5
        with pytest.raises(SimulationError):
            space_time_spectrum(frames, bad_t, cell)


class TestExtractBranch:
    def test_monotone_synthetic_dispersion(self):
        # Superpose waves following f = a + b*k^2 and check the ridge
        # recovers the parabola.
        cell = 4e-9
        n_x, n_t = 128, 2048
        dt = 1e-12
        x = (np.arange(n_x) + 0.5) * cell
        t = np.arange(n_t) * dt
        a, b = 5e9, 2e-7
        frames = np.zeros((n_t, n_x))
        k_values = 2 * np.pi * np.arange(2, 10) / (n_x * cell) * 4
        for k in k_values:
            f = a + b * k**2
            frames += np.sin(2 * np.pi * f * t[:, None] - k * x[None, :])
        spectrum = space_time_spectrum(frames, t, cell)
        ks, fs = extract_branch(spectrum, threshold_ratio=0.3)
        # Compare the ridge only at the excited wavenumbers (between
        # them the spectrum holds leakage, not physics).
        for k_target in k_values:
            index = int(np.argmin(np.abs(ks - k_target)))
            if abs(ks[index] - k_target) > 0.1 * k_target:
                continue  # this k was filtered out by the threshold
            predicted = a + b * ks[index] ** 2
            assert fs[index] == pytest.approx(predicted, rel=0.15)

    def test_empty_spectrum_raises(self):
        frames = np.zeros((64, 32))
        t = np.arange(64) * 1e-12
        spectrum = space_time_spectrum(frames, t, 4e-9)
        with pytest.raises(SimulationError):
            extract_branch(spectrum)

    def test_k_window(self):
        k0 = 2 * np.pi / 64e-9
        frames, t, cell = _plane_wave_movie(k0, 15e9)
        spectrum = space_time_spectrum(frames, t, cell)
        with pytest.raises(SimulationError):
            extract_branch(spectrum, k_min=5 * k0, threshold_ratio=0.5)


class TestRecorder:
    def test_records_with_stride(self):
        from repro.materials import FECOB_PMA
        from repro.mm import Mesh, Simulation, State, ZeemanField

        mesh = Mesh(16, 1, 1, 4e-9, 4e-9, 4e-9)
        state = State.uniform(mesh, FECOB_PMA, direction=(0.1, 0, 1))
        sim = Simulation(state, terms=[ZeemanField((0, 0, 1e5))])
        record = record_space_time(sim, stride=5)
        sim.run(1e-11, dt=1e-12)  # 10 steps -> 2 recorded frames
        assert len(record["frames"]) == 2
        assert record["frames"][0].shape == (16,)
        assert len(record["times"]) == 2
