"""Saved compiled-circuit artifacts: the fleet warm-start path.

Pins the serialization contract of :meth:`CompiledCircuit.save` /
:meth:`CompiledCircuit.load`: a loaded artifact serves bit-identical
results to the freshly-compiled original, and every unsafe load --
stale topology, tampered payload, wrong precision, wrong data width,
foreign format -- refuses with :class:`~repro.errors.ArtifactError`
instead of serving a wrong artifact.  Also covers
:meth:`CompiledCircuitCache.warm` and :meth:`CircuitExecutor.warm`,
whose acceptance bar is a first request with zero compile misses.
"""

import math
import pickle

import pytest

from repro.backends import NumpyBackend
from repro.circuits import (
    CircuitExecutor,
    CompiledCircuitCache,
    GateBindings,
    compile_circuit,
    ripple_carry_adder,
)
from repro.circuits.compiled import CompiledCircuit
from repro.circuits.netlist import Netlist
from repro.errors import ArtifactError

N_BITS = 2


def xor_pair(title):
    netlist = Netlist(title)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_cell("x", "XOR2", ("a", "b"))
    netlist.add_cell("y", "XOR2", ("x", "c"))
    netlist.mark_output("y")
    return netlist


BATCH = [
    {"a": 0, "b": 1, "c": 1},
    {"a": 1, "b": 1, "c": 0},
    {"a": 1, "b": 0, "c": 1},
]


def assert_results_pinned(left, right, tolerance=1e-12):
    """Outputs bit-identical; margins within ``tolerance``."""
    assert left.outputs == right.outputs
    assert left.expected == right.expected
    assert list(left.failed) == list(right.failed)
    for mine, theirs in zip(left.levels, right.levels):
        if mine.min_margin is None or math.isnan(mine.min_margin):
            assert theirs.min_margin is None or math.isnan(
                theirs.min_margin
            )
        else:
            assert abs(mine.min_margin - theirs.min_margin) <= tolerance


class TestSaveLoadRoundTrip:
    def test_loaded_artifact_matches_fresh_compile(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        original = compile_circuit(xor_pair("disk"), bindings)
        path = original.save(tmp_path / "xor.ccz")
        loaded = CompiledCircuit.load(path, bindings)
        assert loaded.signature == original.signature
        assert loaded.n_bits == original.n_bits
        assert loaded.packable == original.packable
        assert_results_pinned(loaded.run(BATCH), original.run(BATCH))

    def test_round_trip_preserves_trace_mode(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        original = compile_circuit(xor_pair("trace"), bindings)
        path = original.save(tmp_path / "xor.ccz")
        loaded = CompiledCircuit.load(path, bindings)
        assert_results_pinned(
            loaded.run(BATCH, mode="trace"),
            original.run(BATCH, mode="trace"),
        )

    def test_save_returns_path_and_counts(self, tmp_path):
        from repro import obs

        bindings = GateBindings(n_bits=N_BITS)
        artifact = compile_circuit(xor_pair("count"), bindings)
        before = obs.get_registry().counter("circuit.artifact_saves")
        path = artifact.save(tmp_path / "a.ccz")
        assert path == tmp_path / "a.ccz"
        after = obs.get_registry().counter("circuit.artifact_saves")
        assert after == before + 1


class TestLoadRefusals:
    def test_wrong_precision_refused(self, tmp_path):
        double = GateBindings(n_bits=N_BITS, backend=NumpyBackend("double"))
        single = GateBindings(n_bits=N_BITS, backend=NumpyBackend("single"))
        path = compile_circuit(xor_pair("p"), double).save(
            tmp_path / "d.ccz"
        )
        with pytest.raises(ArtifactError, match="backend"):
            CompiledCircuit.load(path, single)

    def test_wrong_n_bits_refused(self, tmp_path):
        narrow = GateBindings(n_bits=N_BITS)
        wide = GateBindings(n_bits=N_BITS * 2)
        path = compile_circuit(xor_pair("w"), narrow).save(
            tmp_path / "n.ccz"
        )
        with pytest.raises(ArtifactError, match="n_bits"):
            CompiledCircuit.load(path, wide)

    def test_tampered_topology_refused(self, tmp_path):
        """An artifact whose embedded netlist no longer hashes to the
        saved signature must never serve (stale or tampered payload)."""
        bindings = GateBindings(n_bits=N_BITS)
        path = compile_circuit(xor_pair("t"), bindings).save(
            tmp_path / "t.ccz"
        )
        with open(path, "rb") as handle:
            state = pickle.load(handle)
        tampered = xor_pair("t")
        tampered.add_cell("z", "XOR2", ("x", "y"))
        tampered.mark_output("z")
        state["attrs"]["netlist"] = tampered
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
        with pytest.raises(ArtifactError, match="content-hash"):
            CompiledCircuit.load(path, bindings)

    def test_unknown_format_version_refused(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        path = compile_circuit(xor_pair("v"), bindings).save(
            tmp_path / "v.ccz"
        )
        with open(path, "rb") as handle:
            state = pickle.load(handle)
        state["format"] = 999
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
        with pytest.raises(ArtifactError, match="format"):
            CompiledCircuit.load(path, bindings)

    def test_non_artifact_file_refused(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"this is not a pickle")
        bindings = GateBindings(n_bits=N_BITS)
        with pytest.raises(ArtifactError, match="cannot read"):
            CompiledCircuit.load(path, bindings)

    def test_foreign_pickle_refused(self, tmp_path):
        path = tmp_path / "dict.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"hello": "world"}, handle)
        bindings = GateBindings(n_bits=N_BITS)
        with pytest.raises(ArtifactError, match="not a compiled-circuit"):
            CompiledCircuit.load(path, bindings)


class TestWarmStart:
    def test_cache_warm_serves_without_misses(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        path = compile_circuit(xor_pair("warm"), bindings).save(
            tmp_path / "w.ccz"
        )
        cache = CompiledCircuitCache(max_entries=4)
        loaded = cache.warm([path], bindings)
        assert len(loaded) == 1
        assert len(cache) == 1
        served = cache.get_or_compile(xor_pair("other-title"), bindings)
        assert served is loaded[0]
        assert (cache.hits, cache.misses) == (1, 0)

    def test_executor_warm_first_request_zero_misses(self, tmp_path):
        """The acceptance bar: a warm-started worker's first request
        never pays compile + calibration."""
        bindings = GateBindings(n_bits=N_BITS)
        netlist = ripple_carry_adder(2)
        path = compile_circuit(netlist, bindings).save(
            tmp_path / "rca.ccz"
        )
        executor = CircuitExecutor(bindings=GateBindings(n_bits=N_BITS))
        executor.warm([path])
        result = executor.run(
            ripple_carry_adder(2),
            [{"a0": 1, "a1": 0, "b0": 1, "b1": 1}],
        )
        assert result.correct
        assert executor.cache.misses == 0
        assert executor.cache.hits == 1

    def test_warm_respects_lru_capacity(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        paths = []
        for index, netlist in enumerate(
            (xor_pair("a"), ripple_carry_adder(2), ripple_carry_adder(3))
        ):
            paths.append(
                compile_circuit(netlist, bindings).save(
                    tmp_path / f"{index}.ccz"
                )
            )
        cache = CompiledCircuitCache(max_entries=2)
        loaded = cache.warm(paths, bindings)
        assert len(loaded) == 3  # all load...
        assert len(cache) == 2  # ...but the cache stays bounded

    def test_warm_propagates_refusals(self, tmp_path):
        bindings = GateBindings(n_bits=N_BITS)
        single = GateBindings(
            n_bits=N_BITS, backend=NumpyBackend("single")
        )
        path = compile_circuit(xor_pair("refuse"), bindings).save(
            tmp_path / "r.ccz"
        )
        cache = CompiledCircuitCache(max_entries=2)
        with pytest.raises(ArtifactError):
            cache.warm([path], single)
