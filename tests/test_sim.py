"""Tests for the micromagnetic Simulation driver, probes and sources."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.materials import FECOB_PMA, PERMALLOY
from repro.mm import (
    ExchangeField,
    GaussianPulseWaveform,
    Mesh,
    PointProbe,
    RegionProbe,
    Simulation,
    SineWaveform,
    Source,
    State,
    ThinFilmDemagField,
    ToneBurstWaveform,
    UniaxialAnisotropyField,
    ZeemanField,
)
from repro.physics.kittel import kittel_sphere_frequency


def _macrospin_sim(alpha=1e-4, h=1e5, tilt=0.05):
    mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
    material = PERMALLOY.with_(alpha=alpha)
    state = State.uniform(mesh, material, direction=(tilt, 0.0, 1.0))
    return Simulation(state, terms=[ZeemanField((0, 0, h))])


class TestSimulationDynamics:
    def test_macrospin_precession_frequency(self):
        h = 1e5
        sim = _macrospin_sim(h=h)
        probe = sim.add_point_probe((1e-9, 1e-9, 1e-9))
        sim.run(3e-9, dt=0.2e-12)
        t = probe.times()
        mx = probe.component(0)
        spectrum = np.abs(np.fft.rfft(mx * np.hanning(len(mx))))
        freqs = np.fft.rfftfreq(len(t), t[1] - t[0])
        measured = freqs[spectrum.argmax()]
        expected = kittel_sphere_frequency(sim.state.material, h)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_norm_preserved(self):
        sim = _macrospin_sim(alpha=0.01)
        sim.run(1e-9, dt=0.5e-12)
        assert sim.state.norm_error() < 1e-9

    def test_damping_aligns_with_field(self):
        sim = _macrospin_sim(alpha=0.5, tilt=1.0)
        sim.run(2e-9, dt=0.5e-12)
        assert sim.state.m[0, 0, 0, 2] == pytest.approx(1.0, abs=1e-3)

    def test_time_advances(self):
        sim = _macrospin_sim()
        sim.run(1e-10, dt=1e-12)
        assert sim.t == pytest.approx(1e-10)
        sim.run(1e-10, dt=1e-12)
        assert sim.t == pytest.approx(2e-10)

    def test_adaptive_run(self):
        sim = _macrospin_sim(alpha=0.1)
        sim.run(0.5e-9, dt=1e-12, adaptive=True, tol=1e-6)
        assert sim.state.norm_error() < 1e-6

    def test_requires_terms(self):
        mesh = Mesh(1, 1, 1, 1e-9, 1e-9, 1e-9)
        sim = Simulation(State.uniform(mesh, PERMALLOY))
        with pytest.raises(SimulationError):
            sim.run(1e-10, dt=1e-12)

    def test_invalid_duration(self):
        sim = _macrospin_sim()
        with pytest.raises(SimulationError):
            sim.run(-1e-9, dt=1e-12)

    def test_relax_reaches_low_torque(self):
        mesh = Mesh(4, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, FECOB_PMA, direction=(0.3, 0.1, 1.0))
        sim = Simulation(
            state,
            terms=[
                ExchangeField(),
                UniaxialAnisotropyField(),
                ThinFilmDemagField(),
            ],
        )
        torque = sim.relax(torque_tol=10.0, dt=5e-14)
        assert torque < 10.0
        # PMA wins: relaxed state points along +-z.
        assert abs(sim.state.m[0, 0, 0, 2]) == pytest.approx(1.0, abs=1e-3)

    def test_relax_restores_material(self):
        sim = _macrospin_sim(alpha=0.01, tilt=0.3)
        original = sim.state.material
        sim.relax(torque_tol=100.0, dt=1e-13)
        assert sim.state.material is original

    def test_alpha_profile_validation(self):
        mesh = Mesh(4, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY)
        with pytest.raises(SimulationError):
            Simulation(state, alpha_profile=np.ones((2, 1, 1)))
        with pytest.raises(SimulationError):
            Simulation(state, alpha_profile=np.zeros(mesh.shape))

    def test_alpha_profile_damps_faster(self):
        def final_mz(alpha_profile):
            mesh = Mesh(1, 1, 1, 2e-9, 2e-9, 2e-9)
            material = PERMALLOY.with_(alpha=0.001)
            state = State.uniform(mesh, material, direction=(1, 0, 0.1))
            sim = Simulation(
                state,
                terms=[ZeemanField((0, 0, 2e5))],
                alpha_profile=alpha_profile,
            )
            sim.run(1e-9, dt=0.5e-12)
            return sim.state.m[0, 0, 0, 2]

        lossy = final_mz(np.full((1, 1, 1), 0.5))
        default = final_mz(None)
        assert lossy > default

    def test_suggest_dt_from_exchange(self):
        mesh = Mesh(8, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, FECOB_PMA)
        sim = Simulation(state, terms=[ExchangeField()])
        dt = sim.suggest_dt()
        assert 0 < dt < 1e-12

    def test_suggest_dt_none_without_exchange(self):
        sim = _macrospin_sim()
        assert sim.suggest_dt() is None

    def test_energies_table(self):
        mesh = Mesh(2, 1, 1, 2e-9, 2e-9, 2e-9)
        state = State.uniform(mesh, FECOB_PMA)
        sim = Simulation(
            state, terms=[UniaxialAnisotropyField(), ZeemanField((0, 0, 1e4))]
        )
        table = sim.energies()
        assert "UniaxialAnisotropyField" in table
        assert "ZeemanField" in table
        assert sim.total_energy() == pytest.approx(sum(table.values()))

    def test_energies_disambiguates_duplicates(self):
        sim = _macrospin_sim()
        sim.add_term(ZeemanField((0, 0, 1e4)))
        table = sim.energies()
        assert "ZeemanField" in table and "ZeemanField_2" in table

    def test_energy_decreases_under_damping(self):
        sim = _macrospin_sim(alpha=0.2, tilt=1.0)
        before = sim.total_energy()
        sim.run(1e-9, dt=0.5e-12)
        after = sim.total_energy()
        assert after < before


class TestProbes:
    def test_point_probe_records_each_step(self):
        sim = _macrospin_sim()
        probe = sim.add_point_probe((1e-9, 1e-9, 1e-9), label="centre")
        sim.run(1e-11, dt=1e-12)
        assert len(probe) == 10
        assert probe.label == "centre"
        assert probe.components().shape == (10, 3)

    def test_region_probe_averages(self):
        mesh = Mesh(4, 1, 1, 1e-9, 1e-9, 1e-9)
        state = State.uniform(mesh, PERMALLOY)
        state.m[0, 0, 0] = [1.0, 0.0, 0.0]
        mask = mesh.region_mask(x=(0, 2e-9))
        probe = RegionProbe(mask)
        probe.record(state, 0.0)
        np.testing.assert_allclose(
            probe.components()[0], [0.5, 0.0, 0.5]
        )

    def test_region_probe_empty_mask_raises(self):
        mesh = Mesh(4, 1, 1, 1e-9, 1e-9, 1e-9)
        with pytest.raises(SimulationError):
            RegionProbe(np.zeros(mesh.shape, dtype=bool))

    def test_probe_clear(self):
        sim = _macrospin_sim()
        probe = sim.add_point_probe((1e-9, 1e-9, 1e-9))
        sim.run(1e-11, dt=1e-12)
        probe.clear()
        assert len(probe) == 0
        assert probe.components().shape == (0, 3)

    def test_component_accessor(self):
        sim = _macrospin_sim()
        probe = sim.add_point_probe((1e-9, 1e-9, 1e-9))
        sim.run(1e-11, dt=1e-12)
        np.testing.assert_array_equal(
            probe.component(2), probe.components()[:, 2]
        )


class TestWaveforms:
    def test_sine_value_and_phase(self):
        waveform = SineWaveform(2.0, 1e9, phase=math.pi / 2)
        assert waveform(0.0) == pytest.approx(2.0)

    def test_sine_ramp(self):
        waveform = SineWaveform(1.0, 1e9, phase=math.pi / 2, ramp=1e-9)
        assert abs(waveform(0.0)) < 1e-12
        assert abs(waveform(0.5e-9)) <= 0.5 + 1e-9

    def test_sine_invalid(self):
        with pytest.raises(SimulationError):
            SineWaveform(1.0, -1e9)
        with pytest.raises(SimulationError):
            SineWaveform(1.0, 1e9, ramp=-1.0)

    def test_burst_window(self):
        waveform = ToneBurstWaveform(1.0, 1e9, 1e-9, 2e-9)
        assert waveform(0.5e-9) == 0.0
        assert waveform(2.5e-9) == 0.0
        assert waveform(1.25e-9) != 0.0

    def test_burst_edges(self):
        waveform = ToneBurstWaveform(1.0, 10e9, 0.0, 1e-9, edge=0.2e-9)
        assert abs(waveform(0.0)) < 1e-12
        assert abs(waveform(1e-9)) < 1e-12

    def test_burst_invalid(self):
        with pytest.raises(SimulationError):
            ToneBurstWaveform(1.0, 1e9, 2e-9, 1e-9)
        with pytest.raises(SimulationError):
            ToneBurstWaveform(1.0, 1e9, 0.0, 1e-9, edge=0.6e-9)

    def test_gaussian_pulse_peak(self):
        waveform = GaussianPulseWaveform(3.0, 1e-9, 0.1e-9)
        assert waveform(1e-9) == pytest.approx(3.0)
        assert waveform(2e-9) < 1e-8

    def test_gaussian_invalid_sigma(self):
        with pytest.raises(SimulationError):
            GaussianPulseWaveform(1.0, 0.0, -1e-9)

    def test_source_to_field(self):
        mesh = Mesh(10, 1, 1, 1e-9, 1e-9, 1e-9)
        source = Source(
            region={"x": (0, 3e-9)},
            waveform=SineWaveform(1e3, 1e9, phase=math.pi / 2),
        )
        term = source.to_field(mesh)
        assert term.mask.sum() == 3

    def test_simulation_add_source(self):
        sim = _macrospin_sim()
        source = Source(
            region={"x": (0, 2e-9)}, waveform=SineWaveform(1e3, 1e9)
        )
        term = sim.add_source(source)
        assert term in sim.terms
