"""Tests for repro.mm.table_log (EnergyLogger)."""

import io

import numpy as np
import pytest

from repro.materials import PERMALLOY
from repro.mm import Mesh, Simulation, State, ZeemanField
from repro.mm.table_log import EnergyLogger
from repro.oommf.odt import read_odt, write_odt


def _sim(alpha=0.3):
    mesh = Mesh(2, 1, 1, 2e-9, 2e-9, 2e-9)
    material = PERMALLOY.with_(alpha=alpha)
    state = State.uniform(mesh, material, direction=(1.0, 0.0, 0.5))
    return Simulation(state, terms=[ZeemanField((0, 0, 2e5))])


class TestEnergyLogger:
    def test_records_every_step(self):
        sim = _sim()
        logger = EnergyLogger(sim)
        sim.probes.append(logger)
        sim.run(1e-11, dt=1e-12)
        assert len(logger) == 10

    def test_stride(self):
        sim = _sim()
        logger = EnergyLogger(sim, stride=5)
        sim.probes.append(logger)
        sim.run(1e-11, dt=1e-12)
        assert len(logger) == 2

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            EnergyLogger(_sim(), stride=0)

    def test_columns(self):
        logger = EnergyLogger(_sim())
        assert logger.columns()[:4] == ["Time", "mx", "my", "mz"]
        assert "E ZeemanField" in logger.columns()
        assert logger.columns()[-1] == "Max torque"

    def test_energy_decreases_under_damping(self):
        sim = _sim(alpha=0.5)
        logger = EnergyLogger(sim)
        sim.probes.append(logger)
        sim.run(0.5e-9, dt=1e-12)
        table = logger.table()
        total = table.column("E total")
        assert total[-1] < total[0]

    def test_torque_decreases_toward_equilibrium(self):
        sim = _sim(alpha=0.5)
        logger = EnergyLogger(sim)
        sim.probes.append(logger)
        sim.run(1e-9, dt=1e-12)
        torque = logger.table().column("Max torque")
        assert torque[-1] < 0.1 * torque[0]

    def test_odt_roundtrip(self):
        sim = _sim()
        logger = EnergyLogger(sim)
        sim.probes.append(logger)
        sim.run(5e-12, dt=1e-12)
        buffer = io.StringIO()
        write_odt(logger.table(title="t"), buffer)
        buffer.seek(0)
        loaded = read_odt(buffer)
        np.testing.assert_allclose(
            loaded.column("Time"), logger.table().column("Time")
        )
        assert loaded.title == "t"

    def test_clear(self):
        sim = _sim()
        logger = EnergyLogger(sim)
        sim.probes.append(logger)
        sim.run(5e-12, dt=1e-12)
        logger.clear()
        assert len(logger) == 0
