"""Tests for repro.analysis (spectra, phase, tables) and repro.core.readout."""

import math

import numpy as np
import pytest

from repro.errors import ReadoutError
from repro.analysis.phase import (
    decode_phase_to_bit,
    fft_phasor,
    lock_in,
    phase_at,
)
from repro.analysis.spectra import (
    amplitude_at,
    amplitude_spectrum,
    spectrum_peaks,
    spurious_power_ratio,
)
from repro.analysis.tables import format_bits, render_comparison, render_table
from repro.core.readout import decode_all_channels, decode_channel


def _sine(frequency, amplitude=1.0, phase=0.0, duration=2e-9, rate=640e9):
    t = np.arange(0, duration, 1.0 / rate)
    return t, amplitude * np.sin(2 * np.pi * frequency * t + phase)


class TestAmplitudeSpectrum:
    def test_unit_sine_peak_is_one(self):
        t, s = _sine(10e9)
        freqs, amps = amplitude_spectrum(t, s)
        peak = amps.max()
        assert peak == pytest.approx(1.0, rel=0.02)
        assert freqs[amps.argmax()] == pytest.approx(10e9, rel=0.01)

    def test_amplitude_scales(self):
        t, s = _sine(10e9, amplitude=0.005)
        assert amplitude_at(t, s, 10e9) == pytest.approx(0.005, rel=0.02)

    def test_dc_not_doubled(self):
        t = np.arange(0, 1e-9, 1e-12)
        s = np.full_like(t, 3.0)
        _, amps = amplitude_spectrum(t, s)
        assert amps[0] == pytest.approx(3.0, rel=1e-6)

    def test_window_options(self):
        t, s = _sine(10e9)
        for window in ("hann", "hamming", None, "boxcar"):
            _, amps = amplitude_spectrum(t, s, window=window)
            assert amps.max() == pytest.approx(1.0, rel=0.05)
        with pytest.raises(ReadoutError):
            amplitude_spectrum(t, s, window="flattop")

    def test_nonuniform_grid_rejected(self):
        t = np.array([0.0, 1e-12, 3e-12, 4e-12, 5e-12, 6e-12])
        with pytest.raises(ReadoutError):
            amplitude_spectrum(t, np.zeros(6))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ReadoutError):
            amplitude_spectrum(np.arange(10.0), np.zeros(5))


class TestPeaks:
    def test_two_tone_peaks_found(self):
        t = np.arange(0, 2e-9, 1.0 / 640e9)
        s = np.sin(2 * np.pi * 10e9 * t) + 0.5 * np.sin(2 * np.pi * 30e9 * t)
        peaks = spectrum_peaks(t, s, threshold_ratio=0.2)
        found = sorted(f for f, _ in peaks[:2])
        assert found[0] == pytest.approx(10e9, rel=0.02)
        assert found[1] == pytest.approx(30e9, rel=0.02)
        # Strongest first.
        assert peaks[0][0] == pytest.approx(10e9, rel=0.02)

    def test_silence_has_no_peaks(self):
        t = np.arange(0, 1e-9, 1e-12)
        assert spectrum_peaks(t, np.zeros_like(t)) == []

    def test_spurious_ratio_clean_tone(self):
        t, s = _sine(10e9)
        assert spurious_power_ratio(t, s, [10e9]) < 1e-3

    def test_spurious_ratio_flags_intruder(self):
        t = np.arange(0, 2e-9, 1.0 / 640e9)
        s = np.sin(2 * np.pi * 10e9 * t) + np.sin(2 * np.pi * 33e9 * t)
        ratio = spurious_power_ratio(t, s, [10e9])
        assert ratio > 0.3


class TestLockIn:
    def test_recovers_amplitude_and_phase(self):
        for phase in (0.0, 0.4, math.pi / 2, math.pi, -2.0):
            t, s = _sine(10e9, amplitude=0.7, phase=phase)
            z = lock_in(t, s, 10e9)
            assert abs(z) == pytest.approx(0.7, rel=1e-3)
            assert phase_at(t, s, 10e9) == pytest.approx(
                (phase + math.pi) % (2 * math.pi) - math.pi, abs=1e-3
            )

    def test_rejects_other_frequency(self):
        t, s = _sine(20e9)
        z = lock_in(t, s, 10e9)
        assert abs(z) < 1e-6

    def test_window_selection(self):
        # Phase flips mid-trace: analysing the late window sees pi.
        t = np.arange(0, 4e-9, 1.0 / 640e9)
        s = np.where(
            t < 2e-9,
            np.sin(2 * np.pi * 10e9 * t),
            np.sin(2 * np.pi * 10e9 * t + np.pi),
        )
        late = phase_at(t, s, 10e9, t_start=2.2e-9)
        assert abs(late) == pytest.approx(math.pi, abs=0.05)

    def test_too_few_samples_raises(self):
        with pytest.raises(ReadoutError):
            lock_in(np.arange(4.0), np.zeros(4), 1.0)

    def test_window_shorter_than_period_raises(self):
        t = np.arange(0, 0.5e-10, 1e-12)  # half a 10 GHz period
        with pytest.raises(ReadoutError):
            lock_in(t, np.zeros_like(t), 10e9)

    def test_zero_signal_phase_raises(self):
        t = np.arange(0, 1e-9, 1e-12)
        with pytest.raises(ReadoutError):
            phase_at(t, np.zeros_like(t), 10e9)


class TestFftPhasor:
    def test_agrees_with_lock_in(self):
        t, s = _sine(10e9, amplitude=0.3, phase=1.1)
        z = fft_phasor(t, s, 10e9)
        assert abs(z) == pytest.approx(0.3, rel=0.05)
        phase = math.atan2(z.imag, z.real)
        assert phase == pytest.approx(1.1, abs=0.05)

    def test_dc_bin_rejected(self):
        t = np.arange(0, 1e-9, 1e-12)
        with pytest.raises(ReadoutError):
            fft_phasor(t, np.zeros_like(t), 1.0)

    def test_decode_phase_to_bit(self):
        assert decode_phase_to_bit(0.0) == 0
        assert decode_phase_to_bit(math.pi) == 1
        assert decode_phase_to_bit(-math.pi + 0.01) == 1
        assert decode_phase_to_bit(5 * math.pi) == 1  # wraps


class TestDecodeChannel:
    def test_phase_decoding(self):
        for bit, phase in ((0, 0.0), (1, math.pi)):
            t, s = _sine(10e9, amplitude=0.01, phase=phase)
            decode = decode_channel(t, s, 10e9)
            assert decode.bit == bit
            assert decode.margin > 1.0

    def test_reference_phase_shift(self):
        # Signal at phase 1.0 with reference 1.0 decodes as 0.
        t, s = _sine(10e9, phase=1.0)
        decode = decode_channel(t, s, 10e9, reference_phase=1.0)
        assert decode.bit == 0
        assert decode.phase == pytest.approx(0.0, abs=1e-3)

    def test_amplitude_readout(self):
        t, strong = _sine(10e9, amplitude=1.0)
        decode = decode_channel(
            t,
            strong,
            10e9,
            reference_amplitude=1.0,
            amplitude_readout=True,
        )
        assert decode.bit == 0  # full amplitude = equal inputs = XOR 0
        t, weak = _sine(10e9, amplitude=0.05)
        decode = decode_channel(
            t, weak, 10e9, reference_amplitude=1.0, amplitude_readout=True
        )
        assert decode.bit == 1

    def test_amplitude_readout_needs_reference(self):
        t, s = _sine(10e9)
        with pytest.raises(ReadoutError):
            decode_channel(t, s, 10e9, amplitude_readout=True)

    def test_dead_carrier_refused(self):
        t, s = _sine(10e9, amplitude=1e-6)
        with pytest.raises(ReadoutError, match="weak"):
            decode_channel(t, s, 10e9, reference_amplitude=1.0)

    def test_fft_method(self):
        t, s = _sine(10e9, phase=math.pi)
        decode = decode_channel(t, s, 10e9, method="fft")
        assert decode.bit == 1

    def test_unknown_method(self):
        t, s = _sine(10e9)
        with pytest.raises(ReadoutError):
            decode_channel(t, s, 10e9, method="wavelet")

    def test_decode_all_channels(self):
        t = np.arange(0, 2e-9, 1.0 / 640e9)
        s = np.sin(2 * np.pi * 10e9 * t) + np.sin(
            2 * np.pi * 20e9 * t + np.pi
        )
        decodes = decode_all_channels(t, s, [10e9, 20e9])
        assert [d.bit for d in decodes] == [0, 1]

    def test_decode_all_channels_reference_length_check(self):
        t, s = _sine(10e9)
        with pytest.raises(ReadoutError):
            decode_all_channels(t, s, [10e9], reference_phases=[0.0, 0.0])


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_with_title(self):
        text = render_table(["x"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["1"]])

    def test_render_comparison_adds_note_column(self):
        text = render_comparison([("area", "1", "2")])
        assert "quantity" in text and "paper" in text

    def test_format_bits(self):
        assert format_bits([1, 0, 1]) == "101"
        assert format_bits([]) == ""
