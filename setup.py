"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
builds fail with "invalid command 'bdist_wheel'".  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
